"""The frozen :class:`~repro.serveconfig.ServeConfig` value object:
defaults shared with argparse, JSON round-trips, validation, the
legacy-kwargs shim, and the one shared address parser."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cli import build_arg_parser, serve_config_from_args
from repro.client import parse_address, parse_server_address
from repro.options import Ms2DeprecationWarning
from repro.serveconfig import SERVE_FIELDS, ServeConfig


# ---------------------------------------------------------------------------
# The value object itself
# ---------------------------------------------------------------------------


def test_frozen_and_comparable() -> None:
    config = ServeConfig(port=7777)
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.port = 1  # type: ignore[misc]
    assert config == ServeConfig(port=7777)
    assert config != ServeConfig(port=7778)


def test_replace_derives_variants() -> None:
    base = ServeConfig(port=0)
    fleet = base.replace(shards=4)
    assert fleet.shards == 4
    assert base.shards == 1  # base unchanged


def test_default_deadline_s_converts_ms() -> None:
    assert ServeConfig().default_deadline_s is None
    assert ServeConfig(
        request_deadline_ms=2500.0
    ).default_deadline_s == pytest.approx(2.5)


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def test_validate_requires_exactly_one_listen_address() -> None:
    with pytest.raises(ValueError, match="exactly one"):
        ServeConfig().validate()
    with pytest.raises(ValueError, match="exactly one"):
        ServeConfig(socket="/tmp/s.sock", port=1).validate()
    assert ServeConfig(port=0).validate().port == 0
    assert ServeConfig(socket="/tmp/s.sock").validate()


def test_validate_rejects_sharded_unix_sockets() -> None:
    with pytest.raises(ValueError, match="SO_REUSEPORT"):
        ServeConfig(socket="/tmp/s.sock", shards=2).validate()
    assert ServeConfig(port=0, shards=2).validate()


@pytest.mark.parametrize(
    "changes",
    [
        {"shards": 0},
        {"max_inflight": 0},
        {"queue_limit": -1},
        {"max_frame_bytes": 10},
        {"drain_s": -1.0},
    ],
)
def test_validate_rejects_impossible_capacities(changes) -> None:
    with pytest.raises(ValueError):
        ServeConfig(port=0, **changes).validate()


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------


def test_json_roundtrip_exact() -> None:
    config = ServeConfig(
        port=7777,
        shards=3,
        packages=("loops", "exceptions"),
        package_sources=(("m.ms2", "syntax..."),),
        max_inflight=2,
        queue_limit=5,
        request_deadline_ms=1500.0,
        cache_dir="/tmp/cache",
        metrics_port=0,
        event_log="/tmp/events.jsonl",
        fault_specs=("pool.build_worker:1.0:exception",),
        fault_seed=42,
        prewarm=False,
    )
    payload = config.to_json()
    assert payload["packages"] == ["loops", "exceptions"]
    assert payload["package_sources"] == [["m.ms2", "syntax..."]]
    assert ServeConfig.from_json(payload) == config


def test_from_json_ignores_unknown_keys() -> None:
    assert ServeConfig.from_json(
        {"port": 1, "from_the_future": True}
    ) == ServeConfig(port=1)


def test_from_json_none_is_defaults() -> None:
    assert ServeConfig.from_json(None) == ServeConfig()


@pytest.mark.parametrize(
    "payload",
    [
        {"port": "7777"},
        {"shards": "two"},
        {"packages": "loops"},
        {"package_sources": [["only-one-part"]]},
        {"prewarm": 1},
        {"drain_s": "fast"},
        {"socket": 7},
    ],
)
def test_from_json_rejects_wrong_types(payload) -> None:
    with pytest.raises(ValueError):
        ServeConfig.from_json(payload)


# ---------------------------------------------------------------------------
# Legacy-kwargs shim
# ---------------------------------------------------------------------------


def test_legacy_kwargs_map_and_warn() -> None:
    with pytest.warns(Ms2DeprecationWarning):
        config = ServeConfig.from_legacy_kwargs(
            socket_path="/tmp/legacy.sock",
            package_names=["loops"],
            default_deadline_s=2.0,
            max_inflight=8,
        )
    assert config.socket == "/tmp/legacy.sock"
    assert config.packages == ("loops",)
    assert config.request_deadline_ms == pytest.approx(2000.0)
    assert config.max_inflight == 8


def test_legacy_kwargs_reject_unknown_names() -> None:
    with pytest.raises(TypeError, match="unknown serve"):
        ServeConfig.from_legacy_kwargs(sockets_path="/oops")


def test_serve_rejects_config_plus_legacy_kwargs() -> None:
    from repro.server import serve

    with pytest.raises(TypeError, match="not both"):
        serve(None, ServeConfig(port=0), max_inflight=2)


def test_serve_requires_some_config() -> None:
    from repro.server import serve

    with pytest.raises(TypeError, match="ServeConfig"):
        serve(None)


# ---------------------------------------------------------------------------
# Argparse parity: the CLI's defaults ARE the dataclass defaults
# ---------------------------------------------------------------------------


def test_cli_serve_defaults_match_serveconfig() -> None:
    args = build_arg_parser().parse_args(["serve", "--port", "0"])
    config = serve_config_from_args(args)
    defaults = ServeConfig()
    exempt = {
        "socket", "port",  # the explicit listen address
        "cache_dir",  # CLI defaults to the shared build cache
    }
    for name in SERVE_FIELDS:
        if name in exempt:
            continue
        assert getattr(config, name) == getattr(defaults, name), name


def test_cli_shards_flag_flows_into_config() -> None:
    args = build_arg_parser().parse_args(
        ["serve", "--port", "0", "--shards", "3", "--no-prewarm"]
    )
    config = serve_config_from_args(args)
    assert config.shards == 3
    assert config.prewarm is False
    assert config.validate()


# ---------------------------------------------------------------------------
# parse_server_address (the one shared address parser)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "spec,expected",
    [
        ("unix:///run/ms2.sock", ("unix", "/run/ms2.sock")),
        ("tcp://build-host:7777", ("tcp", "build-host", 7777)),
        ("tcp://:7777", ("tcp", "127.0.0.1", 7777)),
        ("http://gw:9100", ("http", "gw", 9100)),
        ("http://gw:9100/v1/expand", ("http", "gw", 9100)),
        ("http://gw", ("http", "gw", 80)),
        ("7777", ("tcp", "127.0.0.1", 7777)),
        (":7777", ("tcp", "127.0.0.1", 7777)),
        ("host:7777", ("tcp", "host", 7777)),
        ("/tmp/ms2.sock", ("unix", "/tmp/ms2.sock")),
        ("relative/path.sock", ("unix", "relative/path.sock")),
    ],
)
def test_parse_server_address(spec, expected) -> None:
    assert parse_server_address(spec) == expected


@pytest.mark.parametrize(
    "spec", ["unix://", "tcp://host", "tcp://", "http://host:notaport"]
)
def test_parse_server_address_rejects_malformed_urls(spec) -> None:
    with pytest.raises(ValueError):
        parse_server_address(spec)


def test_parse_address_is_the_same_function() -> None:
    """The historical name stays importable and identical."""
    assert parse_address is parse_server_address
