"""The NDJSON protocol: every op, both response shapes, metrics."""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro import __version__
from repro.client import Ms2Client, Ms2ServerError
from repro.options import Ms2Options
from repro.server import PROTOCOL_VERSION

from .conftest import doubler_program

PROGRAM = """
syntax exp twice {| ( $$exp::e ) |} { return(`(($e) * 2)); }
syntax exp quad {| ( $$exp::e ) |} { return(`(twice(twice($e)))); }
int x = quad(1);
"""

BROKEN = "void broken( {\nint x = ;\n"


def test_ping(server):
    with server.client() as client:
        pong = client.ping()
    assert pong["pong"] is True
    assert pong["version"] == __version__
    assert pong["protocol"] == PROTOCOL_VERSION


def test_expand_returns_full_result(server):
    with server.client() as client:
        result = client.expand(PROGRAM, "prog.c")
    assert result.ok
    assert result.output.count("* 2") == 2, result.output
    assert result.stats is not None
    assert result.stats.expansions >= 3


def test_expand_with_request_options(server):
    """Per-request options override the server's: recovery mode turns
    a fail-fast error into diagnostics."""
    with server.client() as client:
        result = client.expand(
            BROKEN, "broken.c", options=Ms2Options(recover=True)
        )
    assert not result.ok
    assert result.diagnostics


def test_expand_failure_is_an_error_frame(server):
    with server.client() as client:
        with pytest.raises(Ms2ServerError) as excinfo:
            client.expand(BROKEN, "broken.c")
    assert excinfo.value.code == "expansion_error"
    # The serialized diagnostic carries the rendered backtrace.
    assert "broken.c" in str(excinfo.value)


def test_trace_returns_span_tree(server):
    with server.client() as client:
        result, tree = client.trace(PROGRAM, "prog.c")
    assert result.spans, "trace must record spans"
    assert result.spans[0].children, "quad nests twice under twice"
    assert "quad" in tree and "twice" in tree


def test_requests_share_one_connection(server):
    with server.client() as client:
        for _ in range(5):
            assert client.expand(PROGRAM, "prog.c").ok
        stats = client.stats()
    assert stats["connections_total"] == 1
    assert stats["requests"]["expand"] == 5


def test_warm_workers_serve_repeat_options(server):
    with server.client() as client:
        client.expand(PROGRAM, "prog.c")
        client.expand(PROGRAM, "prog.c")
        stats = client.stats()
    workers = stats["workers"]
    # The pool pre-warms only the server's default key; request keys
    # warm up after first use, so at most one request was cold.
    assert workers["warm_hits"] >= 1
    assert workers["warm_hits"] + workers["cold_builds"] == 2


def test_stats_shape(server):
    with server.client() as client:
        client.expand(PROGRAM, "prog.c")
        stats = client.stats()
    assert stats["in_flight"] == 0
    assert stats["peak_in_flight"] >= 1
    latency = stats["latency_ms"]
    assert latency["count"] == 1
    assert latency["mean"] > 0
    assert sum(latency["buckets"].values()) == 1
    assert "+Inf" in latency["buckets"]
    cache = stats["expansion_cache"]
    assert set(cache) == {"hits", "misses", "hit_rate"}
    assert stats["server"]["protocol"] == PROTOCOL_VERSION
    assert stats["server"]["options_hash"] == (
        Ms2Options().options_hash()
    )
    assert stats["responses"]["ok"] >= 1


def test_unknown_op_is_bad_request(server):
    with server.client() as client:
        response = client.request({"op": "transmogrify"})
    assert response["ok"] is False
    assert response["error"]["code"] == "bad_request"
    assert "transmogrify" in response["error"]["message"]


def test_invalid_options_payload_is_bad_request(server):
    with server.client() as client:
        response = client.request(
            {"op": "expand", "source": "int x;",
             "options": {"max_errors": "many"}}
        )
    assert response["error"]["code"] == "bad_request"
    assert "max_errors" in response["error"]["message"]


def test_missing_source_is_bad_request(server):
    with server.client() as client:
        response = client.request({"op": "expand"})
    assert response["error"]["code"] == "bad_request"


def test_unknown_package_is_bad_request(server):
    with server.client() as client:
        response = client.request(
            {"op": "expand", "source": "int x;",
             "packages": ["no_such_package"]}
        )
    assert response["error"]["code"] == "bad_request"


def test_shutdown_op_stops_the_server(server):
    with server.client() as client:
        assert client.shutdown()["draining"] is True
    deadline = time.monotonic() + 10
    while server._thread.is_alive():
        assert time.monotonic() < deadline, "server did not stop"
        time.sleep(0.02)
    assert not server.socket_path.exists(), "socket file cleaned up"


def test_raw_frame_ids_echo_back(server):
    with server.client() as client:
        response = client.request(
            {"id": "my-id-42", "op": "ping"}
        )
    assert response["id"] == "my-id-42"
    assert response["ok"] is True


def test_expand_file_hits_the_disk_cache(server_factory, tmp_path):
    source = tmp_path / "unit.c"
    source.write_text(doubler_program(3))
    handle = server_factory(cache_dir=tmp_path / "cache")
    with handle.client() as client:
        first = client.expand_file(source)
        second = client.expand_file(source)
        stats = client.stats()
    assert first["status"] == "ok"
    assert first["from_cache"] is False
    assert second["from_cache"] is True
    assert second["output"] == first["output"]
    assert stats["disk_cache"]["hits"] == 1
    assert stats["disk_cache"]["misses"] >= 1


def test_expand_file_missing_path_is_bad_request(server):
    with server.client() as client:
        with pytest.raises(Ms2ServerError) as excinfo:
            client.expand_file("/no/such/file.c")
    assert excinfo.value.code == "bad_request"


def test_protocol_over_raw_socket(server):
    """The protocol is plain NDJSON — no client library required."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(str(server.socket_path))
    sock.sendall(
        json.dumps({"id": 1, "op": "expand", "source": "int x;"})
        .encode() + b"\n"
    )
    reply = json.loads(sock.makefile("rb").readline())
    sock.close()
    assert reply["ok"] is True
    assert "int x;" in reply["result"]["output"]
