"""The telemetry sidecar: /metrics, /healthz, /statusz over real
HTTP against a live daemon, and agreement with the ``stats`` op."""

from __future__ import annotations

import http.client
import json

import pytest

from tests.telemetry.test_registry import assert_valid_exposition

PROGRAM = (
    "syntax stmt Twice {| $$stmt::body |} "
    "{ return(`{$body; $body;}); }\n"
    "void f(void) { Twice { a(); } }\n"
)


@pytest.fixture
def telemetry_server(server_factory):
    """A daemon with an ephemeral-port HTTP sidecar attached."""
    handle = server_factory(metrics_port=0)
    assert handle.server.sidecar is not None
    assert handle.server.sidecar.bound_port
    return handle


def _get(handle, path: str) -> tuple[int, dict, bytes]:
    conn = http.client.HTTPConnection(
        "127.0.0.1", handle.server.sidecar.bound_port, timeout=10
    )
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return (
            response.status,
            dict(response.getheaders()),
            response.read(),
        )
    finally:
        conn.close()


def test_metrics_endpoint_serves_valid_exposition(telemetry_server):
    with telemetry_server.client() as client:
        client.ping()
        client.expand(PROGRAM, "prog.c")
    status, headers, body = _get(telemetry_server, "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    samples = assert_valid_exposition(body.decode("utf-8"))
    text = body.decode("utf-8")
    assert 'ms2_requests_total{op="ping"} 1' in text
    assert 'ms2_requests_total{op="expand"} 1' in text
    assert samples["ms2_expansions_total"] >= 1
    assert samples["ms2_request_latency_ms_count"] >= 1
    assert samples["ms2_draining"] == 0
    assert 'ms2_server_info{version="' in text


def test_metrics_agree_with_stats_op(telemetry_server):
    """The Prometheus series and the NDJSON ``stats`` op read the
    same counters."""
    with telemetry_server.client() as client:
        for _ in range(3):
            client.expand(PROGRAM, "prog.c")
        stats = client.stats()
    _, _, body = _get(telemetry_server, "/metrics")
    samples = assert_valid_exposition(body.decode("utf-8"))
    assert samples["ms2_expansions_total"] == (
        stats["pipeline"]["expansions"]
    )
    assert samples["ms2_request_latency_ms_count"] == (
        stats["latency_ms"]["count"]
    )
    assert samples["ms2_worker_pool_warm_hits_total"] == (
        stats["workers"]["warm_hits"]
    )
    assert samples["ms2_busy_rejections_total"] == (
        stats["busy_rejections"]
    )


def test_resilience_series_present_and_zero_at_rest(telemetry_server):
    """The PR's resilience counters exist from the first scrape (a
    dashboard can alert on them before anything has failed) and read
    zero on a healthy, fault-free daemon."""
    with telemetry_server.client() as client:
        client.expand(PROGRAM, "prog.c")
    _, _, body = _get(telemetry_server, "/metrics")
    samples = assert_valid_exposition(body.decode("utf-8"))
    for name in (
        "ms2_eventlog_errors_total",
        "ms2_client_retries_total",
        "ms2_client_fallbacks_total",
        "ms2_build_worker_restarts_total",
        "ms2_worker_pool_replenish_failures_total",
    ):
        assert samples.get(name, None) is not None, name


def test_healthz_readiness_flips_on_drain(telemetry_server):
    status, _, body = _get(telemetry_server, "/healthz")
    assert (status, body) == (200, b"ok\n")
    # Deterministic drain check: flip the flag the handler reads
    # (driving a real drain races the sidecar's own shutdown).
    telemetry_server.server._draining = True
    try:
        status, _, body = _get(telemetry_server, "/healthz")
        assert (status, body) == (503, b"draining\n")
        _, _, metrics = _get(telemetry_server, "/metrics")
        assert "ms2_draining 1" in metrics.decode("utf-8")
    finally:
        telemetry_server.server._draining = False


def test_statusz_matches_stats_op_shape(telemetry_server):
    with telemetry_server.client() as client:
        stats = client.stats()
    status, headers, body = _get(telemetry_server, "/statusz")
    assert status == 200
    assert headers["Content-Type"].startswith("application/json")
    payload = json.loads(body)
    assert set(payload) == set(stats)
    assert payload["server"]["pid"] == stats["server"]["pid"]
    assert payload["telemetry"]["metrics_address"].endswith(
        str(telemetry_server.server.sidecar.bound_port)
    )


def test_unknown_path_404_and_post_405(telemetry_server):
    status, _, body = _get(telemetry_server, "/nope")
    assert status == 404
    assert b"/metrics" in body  # the 404 names the valid paths
    conn = http.client.HTTPConnection(
        "127.0.0.1",
        telemetry_server.server.sidecar.bound_port,
        timeout=10,
    )
    try:
        conn.request("POST", "/metrics", body=b"{}")
        assert conn.getresponse().status == 405
    finally:
        conn.close()


def test_sidecar_counts_requests_in_statusz_stats(telemetry_server):
    _get(telemetry_server, "/metrics")
    _get(telemetry_server, "/metrics")
    _get(telemetry_server, "/healthz")
    requests = telemetry_server.server.sidecar.requests
    assert requests["/metrics"] >= 2
    assert requests["/healthz"] >= 1


def test_run_top_polls_a_live_daemon(telemetry_server, tmp_path):
    import io

    from repro.top import run_top

    with telemetry_server.client() as client:
        client.expand(PROGRAM, "prog.c")
    out = io.StringIO()
    assert (
        run_top(
            str(telemetry_server.socket_path),
            interval=0.0,
            iterations=2,
            out=out,
        )
        == 0
    )
    text = out.getvalue()
    assert "repro top" in text
    assert "requests" in text and "latency" in text

# ---------------------------------------------------------------------------
# The single-process HTTP/JSON gateway: POST /v1/expand
# ---------------------------------------------------------------------------


def _post(handle, path: str, body: bytes) -> tuple[int, dict, bytes]:
    conn = http.client.HTTPConnection(
        "127.0.0.1", handle.server.sidecar.bound_port, timeout=10
    )
    try:
        conn.request(
            "POST",
            path,
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return (
            response.status,
            dict(response.getheaders()),
            response.read(),
        )
    finally:
        conn.close()


def test_gateway_expand_matches_ndjson(telemetry_server):
    """POST /v1/expand answers the same frame as the NDJSON socket,
    wrapped in an honest HTTP status."""
    frame = {
        "id": 1,
        "op": "expand",
        "source": PROGRAM,
        "filename": "prog.c",
    }
    status, headers, body = _post(
        telemetry_server, "/v1/expand", json.dumps(frame).encode()
    )
    assert status == 200
    assert headers["Content-Type"].startswith("application/json")
    via_http = json.loads(body)
    assert via_http["ok"] is True
    with telemetry_server.client() as client:
        via_socket = client.request(dict(frame))
    assert (
        via_http["result"]["output"] == via_socket["result"]["output"]
    )


def test_gateway_maps_error_frames_to_http_statuses(telemetry_server):
    status, _, body = _post(telemetry_server, "/v1/expand", b"not json")
    assert status == 400
    assert json.loads(body)["error"]["code"] == "bad_request"

    bad_op = json.dumps({"id": 2, "op": "no_such_op"}).encode()
    status, _, body = _post(telemetry_server, "/v1/expand", bad_op)
    assert status == 400
    assert json.loads(body)["error"]["code"] == "bad_request"


def test_gateway_busy_maps_to_429_with_retry_after():
    """A synthetic busy frame renders as 429 + Retry-After (the
    mapping, tested without having to saturate a real daemon)."""
    from repro.metrics_http import gateway_response, http_status_for_frame

    frame = {
        "id": 3,
        "ok": False,
        "error": {
            "code": "busy",
            "message": "queue full",
            "retry_after_ms": 1500,
        },
    }
    assert http_status_for_frame(frame) == 429
    status, content_type, body, extra = gateway_response(frame)
    assert status == 429
    assert content_type.startswith("application/json")
    assert json.loads(body) == frame
    assert extra["Retry-After"] == "2"  # 1500 ms rounds up


def test_gateway_ping_and_stats_ops(telemetry_server):
    status, _, body = _post(
        telemetry_server,
        "/v1/expand",
        json.dumps({"id": 4, "op": "ping"}).encode(),
    )
    assert status == 200
    assert json.loads(body)["result"]["pong"] is True

    status, _, body = _post(
        telemetry_server,
        "/v1/expand",
        json.dumps({"id": 5, "op": "stats"}).encode(),
    )
    assert status == 200
    assert "latency_ms" in json.loads(body)["result"]


def test_http_client_transport_against_sidecar(telemetry_server):
    """Ms2Client('http://...') speaks to the sidecar gateway."""
    from repro.client import Ms2Client

    port = telemetry_server.server.sidecar.bound_port
    with Ms2Client(f"http://127.0.0.1:{port}") as client:
        result = client.expand(PROGRAM, "prog.c")
    with telemetry_server.client() as ndjson_client:
        expected = ndjson_client.expand(PROGRAM, "prog.c")
    assert result.output == expected.output
