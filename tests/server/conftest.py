"""Fixtures for the expansion-daemon tests: an in-process
:class:`~repro.server.Ms2Server` on a Unix socket in a background
thread, plus helpers shared by the protocol / failure-mode / parity
suites."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.client import Ms2Client
from repro.options import Ms2Options
from repro.server import Ms2Server

#: The doubling macro from the budget tests: depth d yields 2**d
#: statements, so expansion cost is tunable.
DOUBLER = (
    "syntax stmt Twice {| $$stmt::body |} "
    "{ return(`{$body; $body;}); }\n"
)


def doubler_program(depth: int) -> str:
    """~0.8s of real expansion work at depth 12 (see the budget
    suite); cheap at small depths."""
    body = "a();"
    for _ in range(depth):
        body = "Twice { %s }" % body
    return DOUBLER + ("void f(void) { %s }" % body)


class ServerHandle:
    """One daemon in a daemon thread; the test talks over its Unix
    socket with ordinary blocking clients."""

    def __init__(self, socket_path, **kwargs):
        self.socket_path = socket_path
        self.kwargs = kwargs
        self.server: Ms2Server | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> "ServerHandle":
        self._thread.start()
        assert self._ready.wait(30), "server failed to start"
        return self

    def _run(self) -> None:
        async def main() -> None:
            self.server = Ms2Server(
                self.kwargs.pop("options", Ms2Options()),
                socket_path=self.socket_path,
                **self.kwargs,
            )
            await self.server.start()
            self.loop = asyncio.get_running_loop()
            self._ready.set()
            await self.server.serve_until_stopped()

        asyncio.run(main())

    def client(self, **kwargs) -> Ms2Client:
        return Ms2Client(self.socket_path, **kwargs)

    def stop(self) -> None:
        if (
            self.loop is not None
            and self._thread.is_alive()
            and self.server is not None
        ):
            self.loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(30)
        assert not self._thread.is_alive(), "server failed to stop"


@pytest.fixture
def server_factory(tmp_path):
    """``factory(**Ms2Server kwargs) -> ServerHandle`` (started);
    every handle is drained at teardown."""
    handles: list[ServerHandle] = []
    counter = [0]

    def factory(**kwargs) -> ServerHandle:
        counter[0] += 1
        handle = ServerHandle(
            tmp_path / f"ms2-{counter[0]}.sock", **kwargs
        )
        handles.append(handle)
        return handle.start()

    yield factory
    for handle in handles:
        handle.stop()


@pytest.fixture
def server(server_factory) -> ServerHandle:
    """A default daemon: no packages, default options, temp cache."""
    return server_factory()
