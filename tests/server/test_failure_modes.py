"""Daemon failure modes: disconnects, bad frames, backpressure,
deadlines, drain.  Each test pins one way the server must degrade
gracefully instead of crashing, hanging, or corrupting later
requests."""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.client import Ms2Client, Ms2ServerError
from repro.options import Ms2Options

from .conftest import doubler_program

REPO_ROOT = Path(__file__).resolve().parents[2]


def _poll(condition, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while True:
        if condition():
            return
        assert time.monotonic() < deadline, "condition never held"
        time.sleep(interval)


# ---------------------------------------------------------------------------
# Malformed and oversized frames
# ---------------------------------------------------------------------------


def test_malformed_json_keeps_the_connection(server):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(str(server.socket_path))
    reader = sock.makefile("rb")
    sock.sendall(b"{this is not json\n")
    reply = json.loads(reader.readline())
    assert reply["ok"] is False
    assert reply["error"]["code"] == "bad_request"
    # Same connection still serves well-formed requests.
    sock.sendall(
        json.dumps({"id": 2, "op": "ping"}).encode() + b"\n"
    )
    reply = json.loads(reader.readline())
    assert reply["ok"] is True
    sock.close()


def test_non_object_frame_is_bad_request(server):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(str(server.socket_path))
    reader = sock.makefile("rb")
    sock.sendall(b"[1, 2, 3]\n")
    reply = json.loads(reader.readline())
    assert reply["error"]["code"] == "bad_request"
    sock.close()


def test_oversized_frame_is_rejected_and_connection_closed(
    server_factory,
):
    handle = server_factory(max_frame_bytes=4096)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(str(handle.socket_path))
    reader = sock.makefile("rb")
    huge = json.dumps(
        {"op": "expand", "source": "x" * 10_000}
    ).encode() + b"\n"
    sock.sendall(huge)
    reply = json.loads(reader.readline())
    assert reply["ok"] is False
    assert reply["error"]["code"] == "frame_too_large"
    assert reply["error"]["limit"] == 4096
    # Mid-frame resync is impossible: the server closes this
    # connection...
    assert reader.readline() == b""
    sock.close()
    # ...but keeps serving new ones.
    with handle.client() as client:
        assert client.ping()["pong"] is True
    assert handle.server.metrics.bad_frames == 1


# ---------------------------------------------------------------------------
# Client disconnect mid-expansion
# ---------------------------------------------------------------------------


def test_client_disconnect_mid_expansion(server):
    """A client that vanishes while its request is expanding must not
    wedge the worker or poison the next connection."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(str(server.socket_path))
    sock.sendall(
        json.dumps(
            {"id": 1, "op": "expand",
             "source": doubler_program(12), "filename": "slow.c"}
        ).encode() + b"\n"
    )
    # Wait until the request is genuinely in flight, then vanish.
    _poll(lambda: server.server.metrics.in_flight == 1)
    sock.close()
    # The abandoned expansion finishes and unwinds cleanly...
    _poll(lambda: server.server.metrics.in_flight == 0, timeout=30)
    # ...and the daemon keeps serving.
    with server.client() as client:
        assert client.expand("int x = 1;").ok
        stats = client.stats()
    assert stats["client_disconnects"] == 1


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------


def test_busy_rejection_beyond_the_bounded_queue(server_factory):
    handle = server_factory(max_inflight=1, queue_limit=0)
    slow = doubler_program(12)
    results: dict[str, object] = {}

    def run_slow():
        with handle.client() as client:
            results["slow"] = client.expand(slow, "slow.c").ok

    worker = threading.Thread(target=run_slow)
    worker.start()
    _poll(lambda: handle.server.metrics.in_flight == 1)
    with handle.client() as client:
        with pytest.raises(Ms2ServerError) as excinfo:
            client.expand("int x = 1;")
    worker.join(30)
    assert excinfo.value.code == "busy"
    assert excinfo.value.payload["limit"] == 1
    assert results["slow"] is True, "the admitted request completed"
    with handle.client() as client:
        stats = client.stats()
    assert stats["busy_rejections"] == 1
    # Capacity freed: the same request now succeeds.
    with handle.client() as client:
        assert client.expand("int x = 1;").ok


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------


def test_request_deadline_exceeded(server):
    with server.client() as client:
        with pytest.raises(Ms2ServerError) as excinfo:
            client.expand(
                doubler_program(12), "slow.c",
                options=Ms2Options(deadline_s=0.001),
            )
    assert excinfo.value.code == "expansion_error"
    assert "deadline" in str(excinfo.value)


def test_server_default_deadline_applies_when_request_sets_none(
    server_factory,
):
    handle = server_factory(default_deadline_s=0.001)
    with handle.client() as client:
        with pytest.raises(Ms2ServerError) as excinfo:
            client.expand(doubler_program(12), "slow.c")
    assert "deadline" in str(excinfo.value)
    # An explicit per-request deadline overrides the server default.
    with handle.client() as client:
        result = client.expand(
            "int x = 1;", options=Ms2Options(deadline_s=30.0)
        )
    assert result.ok


def test_deadlines_under_concurrent_load(server_factory):
    """Several doomed requests at once: every one gets its own
    expansion_error, none hangs, and the daemon stays healthy."""
    handle = server_factory(max_inflight=2, queue_limit=8)
    errors: list[str] = []
    lock = threading.Lock()

    def doomed():
        with handle.client() as client:
            try:
                client.expand(
                    doubler_program(12), "slow.c",
                    options=Ms2Options(deadline_s=0.001),
                )
            except Ms2ServerError as exc:
                with lock:
                    errors.append(exc.code)

    threads = [threading.Thread(target=doomed) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30)
    assert errors == ["expansion_error"] * 4
    with handle.client() as client:
        assert client.expand("int x = 1;").ok


# ---------------------------------------------------------------------------
# Two clients, two option sets, one daemon
# ---------------------------------------------------------------------------


def test_two_clients_with_different_options_hash(server):
    """Different options route to different worker pools and produce
    their own outputs, concurrently, on one daemon."""
    program = (
        "syntax stmt Log {| ( ) |} { return(`{log();}); }\n"
        "void f(void) { Log ( ) }"
    )
    outputs: dict[str, str] = {}
    lock = threading.Lock()

    def run(tag: str, options: Ms2Options):
        with server.client() as client:
            for _ in range(3):
                result = client.expand(program, "prog.c",
                                       options=options)
                assert result.ok
            with lock:
                outputs[tag] = result.output

    plain = Ms2Options(annotate=False)
    annotated = Ms2Options(annotate=True)
    assert plain.options_hash() != annotated.options_hash()
    threads = [
        threading.Thread(target=run, args=("plain", plain)),
        threading.Thread(target=run, args=("annotated", annotated)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30)
    assert "log();" in outputs["plain"]
    assert outputs["plain"] != outputs["annotated"]
    assert "Log" in outputs["annotated"], "provenance annotations"
    # Both pool keys now hold warm spares.
    idle = server.server.pool.idle_counts()
    assert len(idle) >= 2


# ---------------------------------------------------------------------------
# SIGTERM drain (real process)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(
    not hasattr(signal, "SIGTERM"), reason="needs SIGTERM"
)
def test_sigterm_drains_in_flight_requests(tmp_path):
    """SIGTERM with a request in flight: the response still arrives,
    then the process exits 0 and removes its socket."""
    socket_path = tmp_path / "ms2.sock"
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", str(socket_path),
         "--cache-dir", str(tmp_path / "cache")],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    try:
        client = Ms2Client(socket_path)
        client.wait_ready(30)
        results: dict[str, object] = {}

        def run_slow():
            results["ok"] = client.expand(
                doubler_program(12), "slow.c"
            ).ok

        worker = threading.Thread(target=run_slow)
        worker.start()
        # Let the request reach the server before the signal.
        probe = Ms2Client(socket_path)
        probe.wait_ready(10)
        _poll(lambda: probe.stats()["in_flight"] >= 1, timeout=20)
        probe.close()
        proc.send_signal(signal.SIGTERM)
        worker.join(60)
        assert not worker.is_alive(), "in-flight response never came"
        assert results["ok"] is True
        assert proc.wait(30) == 0
        assert not socket_path.exists()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def test_draining_server_refuses_new_work(server):
    with server.client() as client:
        client.shutdown()
    # The daemon stops promptly with nothing in flight; afterwards
    # the socket is gone, so new connections fail outright.
    _poll(lambda: not server._thread.is_alive())
    with pytest.raises(OSError):
        with server.client() as client:
            client.ping()
