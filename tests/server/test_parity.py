"""Warm-server output is byte-identical to in-process expansion.

The acceptance bar for the daemon: for every file in the examples
corpus, ``expand`` on a warm worker produces exactly the bytes the
library (and therefore ``repro expand``) produces — first request
(cold worker) and second request (warm worker) alike, with and
without a macro-package preamble, under non-default options."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import expand
from repro.options import Ms2Options

CORPUS = Path(__file__).resolve().parents[2] / "examples" / "corpus"
PROGRAMS = sorted(CORPUS.glob("*.c"))
PACKAGES = sorted(CORPUS.glob("*.ms2"))


@pytest.mark.parametrize(
    "path", PROGRAMS, ids=lambda p: p.name
)
def test_corpus_parity_cold_then_warm(server, path):
    source = path.read_text()
    local = expand(source, str(path))
    with server.client() as client:
        cold = client.expand(source, str(path))
        warm = client.expand(source, str(path))
    assert cold.output == local.output
    assert warm.output == local.output
    assert cold.ok == local.ok
    assert [d.to_json() for d in cold.diagnostics] == [
        d.to_json() for d in local.diagnostics
    ]


@pytest.mark.parametrize(
    "package", PACKAGES, ids=lambda p: p.name
)
def test_corpus_parity_with_package_preamble(server, package):
    """Package files sent with the request behave exactly like
    package files loaded locally before the program."""
    program = CORPUS / "plain.c"
    source = program.read_text()
    preamble = [(str(package), package.read_text())]
    local = expand(source, str(program), package_sources=preamble)
    with server.client() as client:
        remote = client.expand(
            source, str(program), package_sources=preamble
        )
    assert remote.output == local.output


@pytest.mark.parametrize(
    "options",
    [
        Ms2Options(annotate=True),
        Ms2Options(hygienic=True),
        Ms2Options(compiled_patterns=False),
        Ms2Options(cache=False),
    ],
    ids=["annotate", "hygienic", "interpreted", "no-cache"],
)
def test_corpus_parity_under_options(server, options):
    """Non-default options round-trip through the request payload
    and reach the worker unchanged."""
    for path in PROGRAMS:
        source = path.read_text()
        local = expand(source, str(path), options=options)
        with server.client() as client:
            remote = client.expand(source, str(path), options=options)
        assert remote.output == local.output, path.name


def test_server_preamble_matches_local_preamble(server_factory):
    """A daemon started with a preamble serves requests that send no
    preamble of their own exactly as a local processor with the same
    packages loaded."""
    package = CORPUS / "unroll.ms2"
    program = CORPUS / "plain.c"
    preamble = [(str(package), package.read_text())]
    handle = server_factory(package_sources=preamble)
    local = expand(
        program.read_text(), str(program), package_sources=preamble
    )
    with handle.client() as client:
        remote = client.expand(program.read_text(), str(program))
    assert remote.output == local.output
