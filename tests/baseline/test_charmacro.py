"""Tests for the GPM-flavoured character macro baseline."""

import pytest

from repro.baseline.charmacro import CharMacroError, CharMacroProcessor


@pytest.fixture()
def cp():
    return CharMacroProcessor()


class TestDefinition:
    def test_def_and_call(self, cp):
        out = cp.process("$DEF,hi,<hello>;$hi;")
        assert out == "hello"

    def test_def_produces_no_output(self, cp):
        assert cp.process("$DEF,x,<y>;") == ""

    def test_def_arity(self, cp):
        with pytest.raises(CharMacroError):
            cp.process("$DEF,onlyname;")


class TestArguments:
    def test_positional_substitution(self, cp):
        out = cp.process("$DEF,greet,<hello ~1!>;$greet,world;")
        assert out == "hello world!"

    def test_two_arguments(self, cp):
        out = cp.process("$DEF,pair,<(~1, ~2)>;$pair,a,b;")
        assert out == "(a, b)"

    def test_argument_reuse(self, cp):
        out = cp.process("$DEF,twice,<~1~1>;$twice,ab;")
        assert out == "abab"

    def test_missing_argument_is_empty(self, cp):
        out = cp.process("$DEF,two,<~1-~2>;$two,a;")
        assert out == "a-"

    def test_quoted_argument_protects_commas(self, cp):
        out = cp.process("$DEF,id,<~1>;$id,<a,b>;")
        assert out == "a,b"


class TestCharacterLevelPower:
    def test_token_splicing(self, cp):
        # Only a character macro can weld two name halves together.
        out = cp.process("$DEF,glue,<~1~2>;int $glue,foo,bar; = 1;")
        assert out == "int foobar = 1;"

    def test_rescanning_generated_calls(self, cp):
        out = cp.process(
            "$DEF,a,<$b;>;$DEF,b,<deep>;$a;"
        )
        assert out == "deep"

    def test_macro_defining_macro(self, cp):
        out = cp.process(
            "$DEF,make,<$DEF,~1,<value-~1>;>;$make,thing;$thing;"
        )
        assert out == "value-thing"

    def test_no_syntactic_safety(self, cp):
        # A character macro happily produces unbalanced garbage.
        out = cp.process("$DEF,bad,<if ( >;$bad;")
        assert out == "if ( "


class TestErrors:
    def test_undefined_macro(self, cp):
        with pytest.raises(CharMacroError):
            cp.process("$nope;")

    def test_unterminated_quote(self, cp):
        with pytest.raises(CharMacroError):
            cp.process("$DEF,x,<body")

    def test_unterminated_call(self, cp):
        with pytest.raises(CharMacroError):
            cp.process("$DEF,f,<~1>;$f,arg")

    def test_runaway_recursion_bounded(self, cp):
        with pytest.raises(CharMacroError):
            cp.process("$DEF,loop,<$loop;>;$loop;")

    def test_bare_dollar_is_literal(self, cp):
        assert cp.process("cost: $5") == "cost: $5"

    def test_dollar_name_without_call_is_literal(self, cp):
        assert cp.process("$price today") == "$price today"


class TestDepthCounterRegression:
    def test_depth_balanced_after_overflow(self):
        from repro.baseline.charmacro import CharMacroError, CharMacroProcessor

        proc = CharMacroProcessor()
        proc.define("LOOP", "$LOOP;")
        import pytest

        with pytest.raises(CharMacroError):
            proc.process("$LOOP;")
        assert proc._depth == 0
        # A later, well-behaved expansion still works.
        proc.define("GREET", "hello")
        assert "hello" in proc.process("$GREET;")
        with pytest.raises(CharMacroError):
            proc.process("$LOOP;")
        assert proc._depth == 0
