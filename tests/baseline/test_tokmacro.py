"""Tests for the CPP-flavoured token macro baseline."""

import pytest

from repro.baseline.tokmacro import (
    TokenMacroError,
    TokenMacroProcessor,
    render_tokens,
)


@pytest.fixture()
def tp():
    return TokenMacroProcessor()


class TestDefine:
    def test_object_like(self, tp):
        tp.define("MAX 100")
        assert not tp.macros["MAX"].function_like

    def test_function_like(self, tp):
        tp.define("SQ(X) X * X")
        macro = tp.macros["SQ"]
        assert macro.function_like
        assert macro.params == ["X"]

    def test_space_before_paren_means_object_like(self, tp):
        # CPP rule: '#define F (x)' is object-like with body '(x)'.
        tp.define("F (x)")
        assert not tp.macros["F"].function_like

    def test_zero_params(self, tp):
        tp.define("NIL() 0")
        assert tp.macros["NIL"].params == []

    def test_malformed_rejected(self, tp):
        with pytest.raises(TokenMacroError):
            tp.define("123 nope")
        with pytest.raises(TokenMacroError):
            tp.define("F(1) x")

    def test_undef(self, tp):
        tp.define("X 1")
        tp.undef("X")
        assert "X" not in tp.macros
        tp.undef("X")  # idempotent


class TestExpansion:
    def test_object_like_substitution(self, tp):
        tp.define("MAX 100")
        assert render_tokens(tp.expand_text("x = MAX;")) == "x = 100 ;"

    def test_function_like_substitution(self, tp):
        tp.define("SQ(X) X * X")
        assert render_tokens(tp.expand_text("SQ(a)")) == "a * a"

    def test_multiple_params(self, tp):
        tp.define("ADD(A, B) A + B")
        assert render_tokens(tp.expand_text("ADD(1, 2)")) == "1 + 2"

    def test_nested_parens_in_argument(self, tp):
        tp.define("ID(X) X")
        assert render_tokens(tp.expand_text("ID(f(a, b))")) == "f ( a , b )"

    def test_rescanning(self, tp):
        tp.define("A B")
        tp.define("B 42")
        assert render_tokens(tp.expand_text("A")) == "42"

    def test_blue_paint_stops_self_reference(self, tp):
        tp.define("X X + 1")
        # Must terminate, leaving the inner X unexpanded.
        assert render_tokens(tp.expand_text("X")) == "X + 1"

    def test_mutual_recursion_terminates(self, tp):
        tp.define("A B")
        tp.define("B A")
        out = render_tokens(tp.expand_text("A"))
        assert out in ("A", "B")

    def test_function_like_without_parens_untouched(self, tp):
        tp.define("F(X) X")
        assert render_tokens(tp.expand_text("F + 1")) == "F + 1"

    def test_wrong_arity_rejected(self, tp):
        tp.define("ADD(A, B) A + B")
        with pytest.raises(TokenMacroError):
            tp.expand_text("ADD(1)")

    def test_unterminated_args_rejected(self, tp):
        tp.define("F(X) X")
        with pytest.raises(TokenMacroError):
            tp.expand_text("F(1")


class TestProcess:
    def test_directives_and_code(self, tp):
        out = tp.process(
            "#define MAX 10\n"
            "int x = MAX;\n"
            "#undef MAX\n"
            "int y = MAX;\n"
        )
        assert "int x = 10 ;" in out
        assert "int y = MAX ;" in out

    def test_blank_lines_dropped(self, tp):
        out = tp.process("\n\nint x;\n\n")
        assert out == "int x ;"
