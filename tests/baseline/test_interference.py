"""The paper's introduction example: token macros interfere, syntax
macros encapsulate.

``#define MULT(A, B) A * B`` with arguments ``x + y`` and ``m + n``
expands (at the token level) to ``x + y * m + n``, which parses as
``x + (y * m) + n`` — not the intended ``(x + y) * (m + n)``.  The
equivalent MS2 macro substitutes at the tree level, so interference is
impossible.
"""

from repro import MacroProcessor
from repro.baseline.tokmacro import TokenMacroProcessor, render_tokens
from repro.cast import nodes, render_sexpr
from tests.conftest import parse_expr


MULT_SYNTAX = """
syntax exp MULT {| ( $$exp::a , $$exp::b ) |}
{ return(`(($a) * ($b))); }
"""


class TestTokenInterference:
    def test_expansion_is_flat_token_splice(self):
        tp = TokenMacroProcessor()
        tp.define("MULT(A, B) A * B")
        out = render_tokens(tp.expand_text("MULT(x + y, m + n)"))
        assert out == "x + y * m + n"

    def test_resulting_parse_is_wrong(self):
        tp = TokenMacroProcessor()
        tp.define("MULT(A, B) A * B")
        out = render_tokens(tp.expand_text("MULT(x + y, m + n)"))
        tree = parse_expr(out)
        # x + (y * m) + n: the top operator is +, not *.
        assert isinstance(tree, nodes.BinaryOp)
        assert tree.op == "+"

    def test_paren_discipline_works_around_it(self):
        # The CPP folklore fix: parenthesize everything.
        tp = TokenMacroProcessor()
        tp.define("MULT(A, B) ((A) * (B))")
        out = render_tokens(tp.expand_text("MULT(x + y, m + n)"))
        tree = parse_expr(out)
        assert tree.op == "*"


class TestSyntaxEncapsulation:
    def test_tree_substitution_preserves_structure(self):
        mp = MacroProcessor()
        mp.load(MULT_SYNTAX)
        out = mp.expand_to_c("void f(void) { r = MULT(x + y, m + n); }")
        assert "(x + y) * (m + n)" in out

    def test_parse_of_expansion_is_multiplication(self):
        mp = MacroProcessor()
        mp.load(MULT_SYNTAX)
        unit = mp.expand_to_ast("void f(void) { r = MULT(x + y, m + n); }")
        value = unit.items[0].body.stmts[0].expr.value
        assert value.op == "*"
        assert value.left.op == "+"
        assert value.right.op == "+"

    def test_macro_writer_needs_no_paren_discipline(self):
        # Even WITHOUT defensive parens in the template, trees nest
        # correctly: `($a * $b) substitutes subtrees, not tokens.
        mp = MacroProcessor()
        mp.load(
            "syntax exp M {| ( $$exp::a , $$exp::b ) |}"
            "{ return(`($a * $b)); }"
        )
        unit = mp.expand_to_ast("void f(void) { r = M(x + y, m + n); }")
        value = unit.items[0].body.stmts[0].expr.value
        assert value.op == "*"
        assert render_sexpr(value) == (
            "(* (+ (id x) (id y)) (+ (id m) (id n)))"
        )
