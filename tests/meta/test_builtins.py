"""Tests for every meta-language builtin function."""

import pytest

from repro.cast import nodes
from repro.errors import ExpansionError, MetaInterpError
from repro.meta.builtins import BUILTIN_IMPLS
from repro.meta.frames import NULL
from repro.meta.interp import Interpreter
from repro.meta.values import Closure


@pytest.fixture()
def interp():
    return Interpreter()


def call(interp, name, *args):
    return BUILTIN_IMPLS[name](interp, list(args), None)


def ident(name: str) -> nodes.Identifier:
    return nodes.Identifier(name)


class TestIdentifierBuiltins:
    def test_gensym_default(self, interp):
        out = call(interp, "gensym")
        assert isinstance(out, nodes.Identifier)

    def test_gensym_with_prefix(self, interp):
        out = call(interp, "gensym", "tmp")
        assert "tmp" in out.name

    def test_gensym_with_identifier_prefix(self, interp):
        out = call(interp, "gensym", ident("counter"))
        assert "counter" in out.name

    def test_concat_ids(self, interp):
        out = call(interp, "concat_ids", ident("foo"), ident("bar"))
        assert out == ident("foobar")

    def test_concat_ids_arity(self, interp):
        with pytest.raises(MetaInterpError):
            call(interp, "concat_ids", ident("a"))

    def test_symbolconc_strings_and_ids(self, interp):
        out = call(interp, "symbolconc", "print_", ident("fruit"))
        assert out == ident("print_fruit")

    def test_make_id(self, interp):
        assert call(interp, "make_id", "x") == ident("x")

    def test_make_id_type_checked(self, interp):
        with pytest.raises(MetaInterpError):
            call(interp, "make_id", 42)

    def test_pstring(self, interp):
        assert call(interp, "pstring", ident("apple")) == "apple"

    def test_id_name_alias(self, interp):
        assert call(interp, "id_name", ident("x")) == "x"

    def test_make_num_and_num_value(self, interp):
        num = call(interp, "make_num", 7)
        assert isinstance(num, nodes.IntLit)
        assert call(interp, "num_value", num) == 7


class TestListBuiltins:
    def test_length(self, interp):
        assert call(interp, "length", [1, 2, 3]) == 3

    def test_length_requires_list(self, interp):
        with pytest.raises(MetaInterpError):
            call(interp, "length", ident("x"))

    def test_is_empty(self, interp):
        assert call(interp, "is_empty", []) == 1
        assert call(interp, "is_empty", [1]) == 0

    def test_list_flattens(self, interp):
        assert call(interp, "list", 1, [2, 3], 4) == [1, 2, 3, 4]

    def test_list_skips_null(self, interp):
        assert call(interp, "list", 1, NULL, 2) == [1, 2]

    def test_empty_list(self, interp):
        assert call(interp, "list") == []

    def test_append(self, interp):
        assert call(interp, "append", [1], [2, 3]) == [1, 2, 3]

    def test_cons(self, interp):
        assert call(interp, "cons", 1, [2]) == [1, 2]

    def test_first_rest(self, interp):
        assert call(interp, "first", [1, 2]) == 1
        assert call(interp, "rest", [1, 2]) == [2]

    def test_first_of_empty_raises(self, interp):
        with pytest.raises(MetaInterpError):
            call(interp, "first", [])

    def test_nth(self, interp):
        assert call(interp, "nth", [10, 20, 30], 1) == 20

    def test_nth_bounds(self, interp):
        with pytest.raises(MetaInterpError):
            call(interp, "nth", [1], 3)

    def test_reverse(self, interp):
        assert call(interp, "reverse", [1, 2, 3]) == [3, 2, 1]

    def test_map_with_closure(self, interp):
        # map over a hand-built anonymous closure: (x) -> x body.
        body = nodes.Identifier("x")
        closure = Closure("", ["x"], body, interp.globals, is_anon=True)
        assert call(interp, "map", closure, [1, 2]) == [1, 2]

    def test_map_requires_function(self, interp):
        with pytest.raises(MetaInterpError):
            call(interp, "map", 42, [1])


class TestPredicates:
    def test_simple_expression_on_identifier(self, interp):
        assert call(interp, "simple_expression", ident("x")) == 1

    def test_simple_expression_on_literal(self, interp):
        assert call(interp, "simple_expression", nodes.IntLit(1)) == 1

    def test_simple_expression_on_compound(self, interp):
        complex_expr = nodes.BinaryOp("+", ident("a"), ident("b"))
        assert call(interp, "simple_expression", complex_expr) == 0

    def test_present(self, interp):
        assert call(interp, "present", NULL) == 0
        assert call(interp, "present", ident("x")) == 1

    def test_same_id(self, interp):
        assert call(interp, "same_id", ident("a"), ident("a")) == 1
        assert call(interp, "same_id", ident("a"), ident("b")) == 0


class TestStringsAndDiagnostics:
    def test_strcmp(self, interp):
        assert call(interp, "strcmp", "a", "a") == 0
        assert call(interp, "strcmp", "a", "b") == -1
        assert call(interp, "strcmp", "b", "a") == 1

    def test_strlen(self, interp):
        assert call(interp, "strlen", "hello") == 5

    def test_ast_to_string(self, interp):
        out = call(interp, "ast_to_string", ident("x"))
        assert out == "x"

    def test_error_raises(self, interp):
        with pytest.raises(ExpansionError) as exc:
            call(interp, "error", "bad thing", ident("x"))
        assert "bad thing" in str(exc.value)

    def test_warning_collects(self, interp):
        call(interp, "warning", "heads up")
        assert interp.warnings == ["heads up"]


class TestCoverage:
    def test_static_signatures_cover_all_impls(self):
        from repro.asttypes.check import BUILTIN_SIGNATURES

        assert set(BUILTIN_IMPLS) == set(BUILTIN_SIGNATURES)
