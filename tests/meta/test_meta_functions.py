"""Meta-function behaviour: recursion, composition, closures."""

import pytest

from repro import MacroProcessor
from repro.errors import MetaInterpError
from tests.conftest import assert_c_equal


class TestRecursion:
    def test_recursive_meta_function(self, mp):
        # Build a right-nested addition chain of depth n at expansion
        # time: chain(3) => x + (x + (x + 0)).
        mp.load(
            "@exp chain(int n) {"
            "  if (n == 0) return(`(0));"
            "  return(`(x + $(chain(n - 1))));"
            "}\n"
            "syntax exp chain3 {| ( ) |} { return(chain(3)); }"
        )
        out = mp.expand_to_c("int r = chain3();")
        assert "x + x + x + 0" in out.replace("(", "").replace(")", "")

    def test_mutually_recursive_is_use_before_def_error(self, mp):
        # 'odd' is not yet declared when 'even' is checked.
        from repro.errors import MacroTypeError

        with pytest.raises(MacroTypeError):
            mp.load(
                "@exp even(int n) {"
                "  if (n == 0) return(`(1)); return(odd(n - 1)); }\n"
                "@exp odd(int n) {"
                "  if (n == 0) return(`(0)); return(even(n - 1)); }"
            )

    def test_deep_recursion_bounded_by_fuel(self, mp):
        # Whether the step-count fuel or the host stack limit trips
        # first, the user must only ever see an Ms2Error subclass —
        # never a raw Python RecursionError.
        mp.load(
            "@exp spin(int n) { return(spin(n + 1)); }\n"
            "syntax exp go {| ( ) |} { return(spin(0)); }"
        )
        with pytest.raises(MetaInterpError):
            mp.expand_to_c("int x = go();")


class TestComposition:
    def test_functions_share_metadcl_state(self, mp):
        mp.load(
            "metadcl int hits;\n"
            "@exp bump() { hits = hits + 1; return(make_num(hits)); }\n"
            "syntax exp next {| ( ) |} { return(bump()); }"
        )
        out = mp.expand_to_c("void f(void) { a = next(); b = next(); }")
        assert "a = 1" in out and "b = 2" in out

    def test_function_taking_list(self, mp):
        mp.load(
            "@stmt seq(@stmt items[]) { return(`{{$items}}); }\n"
            "syntax stmt par {| { $$*stmt::body } |}"
            "{ return(seq(body)); }"
        )
        out = mp.expand_to_c("void f(void) { par {a(); b();} }")
        assert_c_equal(out, "void f(void) {{a(); b();}}")

    def test_void_meta_function_for_effects(self, mp):
        mp.load(
            "metadcl @id seen[];\n"
            "@id note(@id x) { seen = cons(x, seen); return(x); }\n"
            "syntax stmt reg {| $$id::n |}"
            "{ note(n); return(`{mark($(make_num(length(seen)))) ;}); }"
        )
        out = mp.expand_to_c("void f(void) { reg a; reg b; }")
        assert "mark(1)" in out
        assert "mark(2)" in out


class TestAnonymousFunctionSemantics:
    def test_closure_captures_enclosing_frame(self, mp):
        mp.load(
            "syntax exp addn {| ( $$num::n , { $$+/, exp::es } ) |}"
            "{ int k; k = num_value(n);"
            "  return(`(f($(map((@exp e; `(($e) + $(make_num(k)))), es)))));"
            "}"
        )
        out = mp.expand_to_c("int r = addn(10, {a, b});")
        assert "a + 10" in out
        assert "b + 10" in out

    def test_anon_functions_passed_downward_only(self, mp):
        # Attempting to RETURN an anonymous function from a macro is a
        # type error (macros return ASTs).
        from repro.errors import MacroTypeError

        with pytest.raises(MacroTypeError):
            mp.load(
                "syntax exp leak {| ( ) |}"
                "{ return((@id x; `($x))); }"
            )
