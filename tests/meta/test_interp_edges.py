"""Edge-case tests for the meta-interpreter."""

import pytest

from repro.asttypes.types import ID, INT, STRING, TupleType, list_of
from repro.cast import nodes
from repro.errors import MetaInterpError
from tests.meta.test_interp import run_body


class TestTupleValues:
    def tuple_binding(self):
        ttype = TupleType((("k", ID), ("v", ID)))
        value = nodes.TupleValue(
            [
                nodes.MacroArg("k", nodes.Identifier("key")),
                nodes.MacroArg("v", nodes.Identifier("val")),
            ]
        )
        return (ttype, value)

    def test_field_read(self):
        result = run_body(
            "{ return(t.k); }", {"t": self.tuple_binding()}
        )
        assert result == nodes.Identifier("key")

    def test_field_write(self):
        result = run_body(
            "{ t.v = t.k; return(t.v); }", {"t": self.tuple_binding()}
        )
        assert result == nodes.Identifier("key")

    def test_missing_field_raises(self):
        with pytest.raises(MetaInterpError):
            run_body("{ return(t.zzz); }", {"t": self.tuple_binding()})


class TestListMutation:
    def ids(self, *names):
        return (list_of(ID), [nodes.Identifier(n) for n in names])

    def test_indexed_assignment(self):
        result = run_body(
            "{ xs[0] = xs[1]; return(xs[0]); }",
            {"xs": self.ids("a", "b")},
        )
        assert result == nodes.Identifier("b")

    def test_indexed_assignment_bounds_checked(self):
        with pytest.raises(MetaInterpError):
            run_body("{ xs[9] = xs[0]; return(*xs); }",
                     {"xs": self.ids("a")})

    def test_rebinding_list_variable(self):
        result = run_body(
            "{ xs = cons(make_id(\"z\"), xs); return(length(xs)); }",
            {"xs": self.ids("a", "b")},
        )
        assert result == 3


class TestStrings:
    def test_string_indexing_yields_char_code(self):
        result = run_body(
            '{ char *s; s = "AB"; return(s[1]); }'
        )
        assert result == ord("B")

    def test_string_comparison_via_strcmp(self):
        result = run_body(
            '{ return(strcmp("abc", "abc") == 0); }'
        )
        assert result == 1

    def test_chars_are_ints(self):
        assert run_body("{ return('a' + 1); }") == ord("a") + 1


class TestScopes:
    def test_block_scoping(self):
        result = run_body(
            "{ int x; x = 1; { int x; x = 99; } return(x); }"
        )
        assert result == 1

    def test_inner_block_sees_outer(self):
        result = run_body(
            "{ int x; x = 5; { x = x + 1; } return(x); }"
        )
        assert result == 6

    def test_compound_assignment_operators(self):
        assert run_body(
            "{ int x; x = 10; x += 5; x -= 3; x *= 2; x /= 4; "
            "return(x); }"
        ) == 6

    def test_shift_assignment(self):
        assert run_body("{ int x; x = 1; x <<= 4; return(x); }") == 16


class TestConditionalsAndComma:
    def test_ternary(self):
        assert run_body("{ return(1 ? 2 : 3); }") == 2

    def test_comma_evaluates_left_to_right(self):
        assert run_body(
            "{ int x; int y; x = 0; y = (x = 5, x + 1); return(y); }"
        ) == 6

    def test_null_is_falsy(self):
        from repro.asttypes.types import STMT

        from repro.meta.frames import NULL

        result = run_body(
            "{ if (present(s)) return(1); return(0); }",
            {"s": (STMT, None)},
        )
        # None binding becomes NULL; present() sees it as absent.
        assert result == 0


class TestErrorsCarryContext:
    def test_unbound_variable_message(self):
        with pytest.raises(MetaInterpError) as exc:
            run_body("{ return(ghost); }")
        assert "ghost" in str(exc.value)

    def test_calling_non_function(self):
        with pytest.raises(MetaInterpError) as exc:
            run_body("{ int x; x = 1; x(2); return(0); }")
        assert "not callable" in str(exc.value)

    def test_truthiness_of_closure_is_error(self):
        with pytest.raises(MetaInterpError):
            run_body("{ if ((@id x; `($x))) return(1); return(0); }")
