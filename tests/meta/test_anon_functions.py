"""Anonymous functions: multi-parameter, nesting, typing."""

import pytest

from repro.asttypes.types import EXP, ID, FuncType, list_of
from repro.errors import MacroTypeError
from tests.conftest import assert_c_equal, parse_meta_expr


class TestTyping:
    def test_two_parameter_function(self):
        _, t = parse_meta_expr("(@id a; @id b; `($a + $b))")
        assert isinstance(t, FuncType)
        assert t.params == (ID, ID)
        assert t.result == EXP

    def test_mixed_ast_and_c_params(self):
        _, t = parse_meta_expr("(@id a; int n; `($a))")
        assert len(t.params) == 2

    def test_single_declaration_two_names(self):
        _, t = parse_meta_expr("(@id a, b; `($a + $b))")
        assert t.params == (ID, ID)

    def test_nested_anonymous_functions(self):
        _, t = parse_meta_expr(
            "map((@id outer; *map((@id inner; `($inner)), xs)), ys)",
            {"xs": list_of(ID), "ys": list_of(ID)},
        )
        assert t == list_of(EXP)

    def test_body_type_errors_caught_at_definition(self):
        from repro.errors import Ms2Error

        # The ill-typed placeholder surfaces while the template is
        # parsed (a ParseError), still at definition time.
        with pytest.raises(Ms2Error):
            parse_meta_expr("(@stmt s; `(1 + $s))")


class TestBehaviour:
    def test_multi_arg_function_via_meta_function(self, mp):
        # Anonymous functions only flow into map (unary); exercise a
        # binary function through a named meta-function instead.
        mp.load(
            "@exp sum2(@exp a, @exp b) { return(`(($a) + ($b))); }\n"
            "syntax exp addpair {| ( $$exp::x , $$exp::y ) |}"
            "{ return(sum2(x, y)); }"
        )
        out = mp.expand_to_c("int r = addpair(1, 2);")
        assert "1 + 2" in out.replace("(", "").replace(")", "")

    def test_anon_fn_sees_macro_formals(self, mp):
        mp.load(
            "syntax stmt tag_all {| $$id::tag { $$+/, id::ids } |}"
            "{ return(`{f($(map((@id i; `($(concat_ids(tag, i)))), ids)));});"
            "}"
        )
        out = mp.expand_to_c("void g(void) { tag_all pre {a, b}; }")
        assert "f(prea, preb)" in out
