"""Tests for the embedded meta-language interpreter."""

import pytest

from repro.cast import decls, nodes
from repro.errors import MetaInterpError
from repro.macros.definition import MacroDefinition
from repro.macros.pattern import parse_pattern_text
from repro.meta.frames import NULL
from repro.meta.interp import Interpreter, _c_div, _c_mod
from repro.parser.core import Parser
from repro.asttypes.env import TypeEnv


def run_body(body_source: str, bindings=None, pattern="( )", ret="exp"):
    """Define a macro with the given body and run it."""
    parser = Parser(body_source)
    env = parser.global_type_env.child()
    from repro.asttypes.types import AstType

    binding_types = {}
    values = {}
    for name, (asttype, value) in (bindings or {}).items():
        env.bind(name, asttype)
        binding_types[name] = asttype
        values[name] = value
    with parser._meta(True), parser._scoped_env(env):
        body = parser.parse_compound_statement()
    defn = MacroDefinition("test", ret, False, parse_pattern_text(pattern), body)
    interp = Interpreter()
    return interp.call_macro(defn, values)


class TestArithmetic:
    def test_basic(self):
        assert run_body("{ return(1 + 2 * 3); }") == 7

    def test_c_division_truncates_toward_zero(self):
        assert run_body("{ return(-7 / 2); }") == -3
        assert run_body("{ return(7 / -2); }") == -3
        assert run_body("{ return(7 / 2); }") == 3

    def test_c_modulo(self):
        assert run_body("{ return(-7 % 2); }") == -1
        assert run_body("{ return(7 % -2); }") == 1

    def test_division_by_zero(self):
        with pytest.raises(MetaInterpError):
            run_body("{ return(1 / 0); }")

    def test_helpers_match_c(self):
        assert _c_div(-7, 2) == -3
        assert _c_mod(-7, 2) == -1

    def test_shifts_and_bitops(self):
        assert run_body("{ return(1 << 4); }") == 16
        assert run_body("{ return(12 & 10); }") == 8
        assert run_body("{ return(12 | 10); }") == 14
        assert run_body("{ return(12 ^ 10); }") == 6

    def test_comparisons_yield_ints(self):
        assert run_body("{ return(3 < 5); }") == 1
        assert run_body("{ return(3 > 5); }") == 0

    def test_unary(self):
        assert run_body("{ return(-(3)); }") == -3
        assert run_body("{ return(!0); }") == 1
        assert run_body("{ return(~0); }") == -1


class TestShortCircuit:
    def test_and_skips_right(self):
        # Division by zero on the right is never evaluated.
        assert run_body("{ return(0 && (1 / 0)); }") == 0

    def test_or_skips_right(self):
        assert run_body("{ return(1 || (1 / 0)); }") == 1


class TestControlFlow:
    def test_if_else(self):
        assert run_body("{ if (1) return(10); else return(20); }") == 10
        assert run_body("{ if (0) return(10); else return(20); }") == 20

    def test_while_loop(self):
        assert run_body(
            "{ int i; int total; i = 0; total = 0;"
            "  while (i < 5) { total = total + i; i = i + 1; }"
            "  return(total); }"
        ) == 10

    def test_for_loop(self):
        assert run_body(
            "{ int i; int t; t = 0;"
            "  for (i = 0; i < 4; i++) t = t + i;"
            "  return(t); }"
        ) == 6

    def test_do_while(self):
        assert run_body(
            "{ int i; i = 0; do i++; while (i < 3); return(i); }"
        ) == 3

    def test_break(self):
        assert run_body(
            "{ int i; for (i = 0; i < 100; i++) { if (i == 7) break; }"
            "  return(i); }"
        ) == 7

    def test_continue(self):
        assert run_body(
            "{ int i; int t; t = 0;"
            "  for (i = 0; i < 5; i++) { if (i == 2) continue; t = t + i; }"
            "  return(t); }"
        ) == 8

    def test_switch(self):
        body = (
            "{ int r; r = 0;"
            "  switch (x) {"
            "    case 1: r = 10; break;"
            "    case 2: r = 20; break;"
            "    default: r = 99; break;"
            "  }"
            "  return(r); }"
        )
        from repro.asttypes.types import INT

        assert run_body(body, {"x": (INT, 1)}) == 10
        assert run_body(body, {"x": (INT, 2)}) == 20
        assert run_body(body, {"x": (INT, 5)}) == 99

    def test_switch_fallthrough(self):
        body = (
            "{ int r; r = 0;"
            "  switch (x) { case 1: r = r + 1; case 2: r = r + 2; break; }"
            "  return(r); }"
        )
        from repro.asttypes.types import INT

        assert run_body(body, {"x": (INT, 1)}) == 3

    def test_fuel_limit(self):
        with pytest.raises(MetaInterpError) as exc:
            run_body("{ while (1) { } return(0); }")
        assert "budget" in str(exc.value)


class TestListValues:
    def make_ids(self, *names):
        from repro.asttypes.types import ID, list_of

        return (list_of(ID), [nodes.Identifier(n) for n in names])

    def test_star_is_car(self):
        value = run_body(
            "{ return(*xs); }", {"xs": self.make_ids("a", "b")}
        )
        assert value == nodes.Identifier("a")

    def test_plus_is_cdr(self):
        value = run_body(
            "{ return(length(xs + 1)); }", {"xs": self.make_ids("a", "b")}
        )
        assert value == 1

    def test_indexing(self):
        value = run_body(
            "{ return(xs[1]); }", {"xs": self.make_ids("a", "b", "c")}
        )
        assert value == nodes.Identifier("b")

    def test_index_out_of_range(self):
        with pytest.raises(MetaInterpError):
            run_body("{ return(xs[5]); }", {"xs": self.make_ids("a")})

    def test_car_of_empty(self):
        with pytest.raises(MetaInterpError):
            run_body("{ return(*xs); }", {"xs": self.make_ids()})

    def test_loop_over_list(self):
        value = run_body(
            "{ int i; int n; n = 0;"
            "  for (i = 0; i < length(xs); i++) n = n + 1;"
            "  return(n); }",
            {"xs": self.make_ids("a", "b", "c")},
        )
        assert value == 3


class TestIncrementDecrement:
    def test_postfix_returns_old(self):
        assert run_body(
            "{ int i; int j; i = 5; j = i++; return(j * 100 + i); }"
        ) == 506

    def test_prefix_returns_new(self):
        assert run_body(
            "{ int i; int j; i = 5; j = ++i; return(j * 100 + i); }"
        ) == 606

    def test_decrement(self):
        assert run_body("{ int i; i = 5; i--; return(i); }") == 4


class TestMetaFunctions:
    def test_define_and_call(self):
        parser = Parser("@exp double_it(@exp e) { return(`(2 * ($e))); }")
        unit = parser.parse_program()
        interp = Interpreter()
        fn = unit.items[0].inner
        interp.define_meta_function(fn)
        closure = interp.globals.lookup("double_it")
        result = interp.call_closure(closure, [nodes.Identifier("x")], None)
        assert isinstance(result, nodes.BinaryOp)

    def test_arity_checked(self):
        parser = Parser("@exp f(@exp e) { return(e); }")
        unit = parser.parse_program()
        interp = Interpreter()
        interp.define_meta_function(unit.items[0].inner)
        closure = interp.globals.lookup("f")
        with pytest.raises(MetaInterpError):
            interp.call_closure(closure, [], None)


class TestGensym:
    def test_unique(self):
        interp = Interpreter()
        names = {interp.gensym().name for _ in range(100)}
        assert len(names) == 100

    def test_prefix(self):
        interp = Interpreter()
        assert "tmp" in interp.gensym("tmp").name

    def test_reserved_prefix(self):
        interp = Interpreter()
        assert interp.gensym().name.startswith("__")


class TestMetaDeclarations:
    def test_defaults(self):
        parser = Parser("x")
        src = "metadcl @id xs[];"
        parser = Parser(src)
        unit = parser.parse_program()
        interp = Interpreter()
        interp.run_meta_declaration(unit.items[0].inner)
        assert interp.globals.lookup("xs") == []

    def test_int_default_zero(self):
        parser = Parser("metadcl int n;")
        unit = parser.parse_program()
        interp = Interpreter()
        interp.run_meta_declaration(unit.items[0].inner)
        assert interp.globals.lookup("n") == 0

    def test_ast_default_null(self):
        parser = Parser("metadcl @stmt s;")
        unit = parser.parse_program()
        interp = Interpreter()
        interp.run_meta_declaration(unit.items[0].inner)
        assert interp.globals.lookup("s") is NULL
