"""Tests for runtime frames and the NULL value."""

import pytest

from repro.errors import MetaInterpError
from repro.meta.frames import NULL, Frame, NullValue


class TestNull:
    def test_singleton(self):
        assert NullValue() is NULL

    def test_falsy(self):
        assert not NULL

    def test_repr(self):
        assert repr(NULL) == "NULL"


class TestFrames:
    def test_define_and_lookup(self):
        f = Frame()
        f.define("x", 1)
        assert f.lookup("x") == 1

    def test_lookup_walks_parents(self):
        parent = Frame()
        parent.define("x", 1)
        child = parent.child()
        assert child.lookup("x") == 1

    def test_child_shadows(self):
        parent = Frame()
        parent.define("x", 1)
        child = parent.child()
        child.define("x", 2)
        assert child.lookup("x") == 2
        assert parent.lookup("x") == 1

    def test_unbound_lookup_raises(self):
        with pytest.raises(MetaInterpError):
            Frame().lookup("nope")

    def test_assign_mutates_defining_frame(self):
        parent = Frame()
        parent.define("x", 1)
        child = parent.child()
        child.assign("x", 5)
        assert parent.lookup("x") == 5

    def test_assign_unbound_raises(self):
        with pytest.raises(MetaInterpError):
            Frame().assign("nope", 1)

    def test_contains(self):
        f = Frame()
        f.define("x", 1)
        assert "x" in f.child()
        assert "y" not in f

    def test_names_deduplicated(self):
        parent = Frame()
        parent.define("x", 1)
        child = parent.child()
        child.define("x", 2)
        child.define("y", 3)
        assert sorted(child.names()) == ["x", "y"]
