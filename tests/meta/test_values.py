"""Tests for meta-value semantics: truthiness, equality, components."""

import pytest

from repro.cast import nodes
from repro.errors import MetaInterpError
from repro.meta.frames import NULL
from repro.meta.values import (
    describe_value,
    extract_component,
    truthy,
    values_equal,
)
from tests.conftest import parse_expr, parse_stmt, parse_c


class TestTruthy:
    def test_null_false(self):
        assert not truthy(NULL)

    def test_ints(self):
        assert truthy(1)
        assert not truthy(0)
        assert truthy(-1)

    def test_lists(self):
        assert not truthy([])
        assert truthy([1])

    def test_ast_nodes_truthy(self):
        assert truthy(nodes.Identifier("x"))

    def test_strings_truthy(self):
        # char* is a non-null pointer, even when empty.
        assert truthy("")


class TestEquality:
    def test_asts_compare_structurally(self):
        assert values_equal(parse_expr("a + b"), parse_expr("a + b"))
        assert not values_equal(parse_expr("a + b"), parse_expr("a - b"))

    def test_null_only_equals_null(self):
        assert values_equal(NULL, NULL)
        assert not values_equal(NULL, 0)

    def test_lists(self):
        a = [nodes.Identifier("x")]
        b = [nodes.Identifier("x")]
        assert values_equal(a, b)
        assert not values_equal(a, [])

    def test_scalars(self):
        assert values_equal(3, 3)
        assert not values_equal(3, "3")


class TestComponents:
    def test_compound_declarations_and_statements(self):
        s = parse_stmt("{int x; f();}")
        assert len(extract_component(s, "declarations")) == 1
        assert len(extract_component(s, "statements")) == 1

    def test_expression_of_exprstmt(self):
        s = parse_stmt("f();")
        assert isinstance(extract_component(s, "expression"), nodes.Call)

    def test_expression_of_return(self):
        s = parse_stmt("return x;")
        assert extract_component(s, "expression") == nodes.Identifier("x")

    def test_return_void_expression_null(self):
        s = parse_stmt("return;")
        assert extract_component(s, "expression") is NULL

    def test_if_components(self):
        s = parse_stmt("if (c) a(); else b();")
        assert extract_component(s, "cond") == nodes.Identifier("c")
        assert extract_component(s, "then") is s.then
        assert extract_component(s, "otherwise") is s.otherwise

    def test_if_without_else(self):
        s = parse_stmt("if (c) a();")
        assert extract_component(s, "otherwise") is NULL

    def test_loop_components(self):
        s = parse_stmt("while (c) body();")
        assert extract_component(s, "cond") == nodes.Identifier("c")
        assert extract_component(s, "body") is s.body

    def test_declaration_components(self):
        unit = parse_c("int x = 1, y;")
        d = unit.items[0]
        assert extract_component(d, "name") == nodes.Identifier("x")
        assert len(extract_component(d, "declarators")) == 2
        ts = extract_component(d, "type_spec")
        assert ts.names == ["int"]

    def test_init_declarator_components(self):
        unit = parse_c("int x = 1;")
        init_d = unit.items[0].init_declarators[0]
        assert extract_component(init_d, "init") == nodes.IntLit(1, "1")
        declarator = extract_component(init_d, "declarator")
        assert extract_component(declarator, "name") == nodes.Identifier("x")

    def test_binary_components(self):
        e = parse_expr("a + b")
        assert extract_component(e, "left") == nodes.Identifier("a")
        assert extract_component(e, "right") == nodes.Identifier("b")
        assert extract_component(e, "op") == "+"

    def test_call_components(self):
        e = parse_expr("f(a, b)")
        assert extract_component(e, "func") == nodes.Identifier("f")
        assert len(extract_component(e, "args")) == 2
        assert extract_component(e, "name") == nodes.Identifier("f")

    def test_unary_components(self):
        e = parse_expr("-x")
        assert extract_component(e, "operand") == nodes.Identifier("x")

    def test_assign_components(self):
        e = parse_expr("a = b")
        assert extract_component(e, "left") == nodes.Identifier("a")
        assert extract_component(e, "right") == nodes.Identifier("b")

    def test_identifier_name_is_string(self):
        assert extract_component(nodes.Identifier("q"), "name") == "q"

    def test_unknown_component_raises(self):
        with pytest.raises(MetaInterpError):
            extract_component(nodes.Identifier("x"), "wibble")


class TestDescribe:
    def test_descriptions(self):
        assert describe_value(NULL) == "NULL"
        assert "Identifier" in describe_value(nodes.Identifier("x"))
        assert "list of 2" in describe_value([1, 2])
        assert describe_value(42) == "42"
