"""Unit tests for the tokenizer."""

import pytest

from repro.errors import LexError
from repro.lexer.scanner import Scanner, tokenize
from repro.lexer.tokens import Token, TokenKind


def kinds(source: str, **kwargs) -> list[TokenKind]:
    return [t.kind for t in tokenize(source, **kwargs)][:-1]


def texts(source: str, **kwargs) -> list[str]:
    return [t.text for t in tokenize(source, **kwargs)][:-1]


class TestBasics:
    def test_empty_input_is_just_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_whitespace_only(self):
        assert kinds("  \t\n\r  ") == []

    def test_identifier(self):
        (tok,) = tokenize("hello")[:-1]
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "hello"

    def test_identifier_with_underscores_and_digits(self):
        assert texts("_foo42 __bar") == ["_foo42", "__bar"]

    def test_keywords_recognized(self):
        toks = tokenize("int while typedef")[:-1]
        assert all(t.kind is TokenKind.KEYWORD for t in toks)

    def test_meta_keywords_recognized(self):
        toks = tokenize("syntax metadcl")[:-1]
        assert all(t.kind is TokenKind.KEYWORD for t in toks)

    def test_keywords_as_idents_when_disabled(self):
        toks = tokenize("int while", keep_keywords=False)[:-1]
        assert all(t.kind is TokenKind.IDENT for t in toks)

    def test_ast_specifier_names_are_plain_idents(self):
        # stmt/exp/id/... are contextual, not reserved.
        toks = tokenize("stmt exp id decl num type_spec")[:-1]
        assert all(t.kind is TokenKind.IDENT for t in toks)


class TestNumbers:
    def test_decimal_int(self):
        (tok,) = tokenize("42")[:-1]
        assert tok.kind is TokenKind.INT_LIT
        assert tok.value == 42

    def test_zero(self):
        assert tokenize("0")[0].value == 0

    def test_hex(self):
        assert tokenize("0xFF")[0].value == 255
        assert tokenize("0x10")[0].value == 16

    def test_octal(self):
        assert tokenize("017")[0].value == 15

    def test_suffixes(self):
        assert tokenize("42u")[0].value == 42
        assert tokenize("42UL")[0].value == 42
        assert tokenize("42l")[0].value == 42

    def test_float(self):
        tok = tokenize("3.25")[0]
        assert tok.kind is TokenKind.FLOAT_LIT
        assert tok.value == 3.25

    def test_float_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-1")[0].value == 0.25

    def test_float_suffix(self):
        tok = tokenize("1.5f")[0]
        assert tok.kind is TokenKind.FLOAT_LIT
        assert tok.value == 1.5

    def test_leading_dot_float(self):
        tok = tokenize(".5")[0]
        assert tok.kind is TokenKind.FLOAT_LIT
        assert tok.value == 0.5

    def test_malformed_hex_raises(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_int_then_member_not_float(self):
        # '1.x' would be odd C, but '1 . x' must not lex 1. as float
        assert [t.text for t in tokenize("a[1].x")[:-1]] == [
            "a", "[", "1", "]", ".", "x",
        ]


class TestStringsAndChars:
    def test_simple_string(self):
        tok = tokenize('"hello"')[0]
        assert tok.kind is TokenKind.STRING_LIT
        assert tok.value == "hello"
        assert tok.text == '"hello"'

    def test_escapes(self):
        assert tokenize(r'"a\nb"')[0].value == "a\nb"
        assert tokenize(r'"tab\there"')[0].value == "tab\there"
        assert tokenize(r'"q\"q"')[0].value == 'q"q'
        assert tokenize(r'"back\\slash"')[0].value == "back\\slash"

    def test_hex_escape(self):
        assert tokenize(r'"\x41"')[0].value == "A"

    def test_octal_escape(self):
        assert tokenize(r'"\101"')[0].value == "A"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_newline_in_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')

    def test_char_literal(self):
        tok = tokenize("'x'")[0]
        assert tok.kind is TokenKind.CHAR_LIT
        assert tok.value == ord("x")

    def test_char_escape(self):
        assert tokenize(r"'\n'")[0].value == ord("\n")
        assert tokenize(r"'\0'")[0].value == 0

    def test_empty_char_raises(self):
        with pytest.raises(LexError):
            tokenize("''")

    def test_unknown_escape_raises(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')


class TestComments:
    def test_block_comment_skipped(self):
        assert texts("a /* comment */ b") == ["a", "b"]

    def test_block_comment_multiline(self):
        assert texts("a /* line1\nline2 */ b") == ["a", "b"]

    def test_line_comment_skipped(self):
        assert texts("a // rest of line\nb") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_comment_is_not_division(self):
        assert texts("a / b") == ["a", "/", "b"]


class TestPunctuation:
    def test_maximal_munch(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]
        assert texts("a<<b") == ["a", "<<", "b"]
        assert texts("a<b") == ["a", "<", "b"]

    def test_arrow_vs_minus(self):
        assert texts("p->x - y") == ["p", "->", "x", "-", "y"]

    def test_increment(self):
        assert texts("i++ + ++j") == ["i", "++", "+", "++", "j"]

    def test_ellipsis(self):
        assert texts("f(int, ...)") == ["f", "(", "int", ",", "...", ")"]


class TestMetaTokens:
    def test_all_seven_meta_tokens(self):
        expected = [
            TokenKind.LBRACE_BAR, TokenKind.BAR_RBRACE,
            TokenKind.DOLLAR_DOLLAR, TokenKind.DOLLAR,
            TokenKind.COLON_COLON, TokenKind.BACKQUOTE, TokenKind.AT,
        ]
        assert kinds("{| |} $$ $ :: ` @") == expected

    def test_lbrace_bar_before_lbrace(self):
        assert kinds("{|")[0] is TokenKind.LBRACE_BAR
        assert texts("{ |") == ["{", "|"]

    def test_dollar_dollar_before_dollar(self):
        assert kinds("$$x") == [TokenKind.DOLLAR_DOLLAR, TokenKind.IDENT]
        assert kinds("$x") == [TokenKind.DOLLAR, TokenKind.IDENT]

    def test_colon_colon_before_colon(self):
        assert kinds("::")[0] is TokenKind.COLON_COLON
        assert texts(": :") == [":", ":"]

    def test_meta_disabled_mode(self):
        with pytest.raises(LexError):
            tokenize("$x", meta=False)
        with pytest.raises(LexError):
            tokenize("`(x)", meta=False)

    def test_bar_rbrace_vs_or(self):
        assert kinds("|}")[0] is TokenKind.BAR_RBRACE
        assert texts("| }") == ["|", "}"]


class TestLocations:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_filename_recorded(self):
        tok = tokenize("x", filename="prog.c")[0]
        assert tok.location.filename == "prog.c"
        assert "prog.c" in str(tok.location)

    def test_offsets_monotonic(self):
        tokens = tokenize("a b c d")[:-1]
        offsets = [t.location.offset for t in tokens]
        assert offsets == sorted(offsets)


class TestTokenHelpers:
    def test_is_punct(self):
        tok = tokenize("+")[0]
        assert tok.is_punct("+")
        assert tok.is_punct("+", "-")
        assert not tok.is_punct("-")

    def test_is_keyword(self):
        tok = tokenize("while")[0]
        assert tok.is_keyword("while")
        assert not tok.is_keyword("for")

    def test_is_ident(self):
        tok = tokenize("foo")[0]
        assert tok.is_ident()
        assert tok.is_ident("foo")
        assert not tok.is_ident("bar")

    def test_describe_eof(self):
        assert tokenize("")[0].describe() == "end of input"

    def test_unexpected_character(self):
        with pytest.raises(LexError) as exc:
            tokenize("\x01", meta=False)
        assert "unexpected character" in str(exc.value)

    def test_next_token_streaming(self):
        scanner = Scanner("a b")
        assert scanner.next_token().text == "a"
        assert scanner.next_token().text == "b"
        assert scanner.next_token().kind is TokenKind.EOF
        # EOF is sticky.
        assert scanner.next_token().kind is TokenKind.EOF
