"""EventLog: JSONL shape, sinks, thread-safety of the counter."""

from __future__ import annotations

import io
import json
import threading

from repro.telemetry import EventLog


def test_stream_sink_records_shape():
    stream = io.StringIO()
    log = EventLog(stream)
    log.log("request", "abcd1234abcd1234", op="expand", id=1)
    log.log("heartbeat")  # no request_id -> key omitted
    log.close()  # stream not owned: stays open
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["event"] == "request"
    assert first["request_id"] == "abcd1234abcd1234"
    assert first["op"] == "expand" and first["id"] == 1
    assert isinstance(first["ts"], float)
    assert "request_id" not in json.loads(lines[1])
    assert log.events_written == 2


def test_path_sink_appends_and_close_owns(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path)
    log.log("a", "1111111111111111")
    log.close()
    # Re-opening appends, never truncates.
    log2 = EventLog(str(path))
    log2.log("b", "2222222222222222")
    log2.close()
    events = [
        json.loads(line)
        for line in path.read_text().splitlines()
    ]
    assert [e["event"] for e in events] == ["a", "b"]


def test_unserializable_fields_degrade_to_str():
    stream = io.StringIO()
    log = EventLog(stream)
    log.log("x", "3333333333333333", obj=object())
    record = json.loads(stream.getvalue())
    assert "object object" in record["obj"]


def test_concurrent_writers_do_not_interleave(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path)

    def spam(tag: str) -> None:
        for index in range(50):
            log.log("tick", tag * 16, n=index)

    threads = [
        threading.Thread(target=spam, args=(str(t),)) for t in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    log.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 200
    for line in lines:
        json.loads(line)  # every line independently parseable
    assert log.events_written == 200
