"""EventLog: JSONL shape, sinks, thread-safety of the counter."""

from __future__ import annotations

import io
import json
import threading

from repro.telemetry import EventLog


def test_stream_sink_records_shape():
    stream = io.StringIO()
    log = EventLog(stream)
    log.log("request", "abcd1234abcd1234", op="expand", id=1)
    log.log("heartbeat")  # no request_id -> key omitted
    log.close()  # stream not owned: stays open
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["event"] == "request"
    assert first["request_id"] == "abcd1234abcd1234"
    assert first["op"] == "expand" and first["id"] == 1
    assert isinstance(first["ts"], float)
    assert "request_id" not in json.loads(lines[1])
    assert log.events_written == 2


def test_path_sink_appends_and_close_owns(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path)
    log.log("a", "1111111111111111")
    log.close()
    # Re-opening appends, never truncates.
    log2 = EventLog(str(path))
    log2.log("b", "2222222222222222")
    log2.close()
    events = [
        json.loads(line)
        for line in path.read_text().splitlines()
    ]
    assert [e["event"] for e in events] == ["a", "b"]


def test_unserializable_fields_degrade_to_str():
    stream = io.StringIO()
    log = EventLog(stream)
    log.log("x", "3333333333333333", obj=object())
    record = json.loads(stream.getvalue())
    assert "object object" in record["obj"]


def test_concurrent_writers_do_not_interleave(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path)

    def spam(tag: str) -> None:
        for index in range(50):
            log.log("tick", tag * 16, n=index)

    threads = [
        threading.Thread(target=spam, args=(str(t),)) for t in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    log.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 200
    for line in lines:
        json.loads(line)  # every line independently parseable
    assert log.events_written == 200


# ---------------------------------------------------------------------------
# Failure containment: event-log errors never reach the request path.
# ---------------------------------------------------------------------------


def test_unwritable_path_disables_from_the_start(tmp_path):
    target = tmp_path / "no-such-dir" / "events.jsonl"
    log = EventLog(target)  # must not raise
    assert log.disabled
    assert log.errors_total == 1
    log.log("request", "abcd1234abcd1234")  # silently dropped
    assert log.events_written == 0
    log.flush()
    log.close()  # all no-ops, no exceptions


def test_write_failures_counted_never_raised():
    class ExplodingStream(io.StringIO):
        def write(self, text):
            raise OSError("disk full")

    log = EventLog(ExplodingStream())
    for _ in range(3):
        log.log("tick", "1111111111111111")  # must not raise
    assert log.errors_total == 3
    assert log.events_written == 0
    assert not log.disabled  # under the consecutive-error limit


def test_disables_after_consecutive_failures():
    from repro.telemetry import EVENTLOG_MAX_CONSECUTIVE_ERRORS

    class ExplodingStream(io.StringIO):
        def write(self, text):
            raise OSError("disk full")

    log = EventLog(ExplodingStream())
    for _ in range(EVENTLOG_MAX_CONSECUTIVE_ERRORS + 10):
        log.log("tick", "1111111111111111")
    assert log.disabled
    # Once disabled, checks stop: no further errors accumulate.
    assert log.errors_total == EVENTLOG_MAX_CONSECUTIVE_ERRORS


def test_success_resets_consecutive_counter():
    class FlakyStream(io.StringIO):
        def __init__(self):
            super().__init__()
            self.calls = 0

        def write(self, text):
            self.calls += 1
            if self.calls % 2 == 1:
                raise OSError("transient")
            return super().write(text)

    log = EventLog(FlakyStream())
    for _ in range(20):  # alternating fail/succeed: never disables
        log.log("tick", "2222222222222222")
    assert not log.disabled
    assert log.events_written == 10
    assert log.errors_total == 10


def test_injected_eventlog_fault_is_absorbed():
    from repro import faults

    stream = io.StringIO()
    log = EventLog(stream)
    faults.arm("eventlog.write:1:io_error:0:2", seed=3)
    try:
        for _ in range(4):
            log.log("tick", "3333333333333333")
    finally:
        faults.disarm()
    assert log.errors_total == 2
    assert log.events_written == 2
    assert not log.disabled
