"""``repro top``: quantile interpolation and the dashboard renderer
(pure functions over canned ``stats`` payloads)."""

from __future__ import annotations

from repro.top import histogram_quantile, render_dashboard


def test_quantile_empty_histogram_is_zero():
    assert histogram_quantile(0.5, [1.0, 10.0], [0, 0, 0]) == 0.0


def test_quantile_interpolates_within_bucket():
    # 10 observations all in (1, 10]: p50 lands mid-bucket.
    value = histogram_quantile(0.5, [1.0, 10.0], [0, 10, 0])
    assert 5.0 < value < 6.0


def test_quantile_overflow_clamps_to_last_finite_bound():
    assert histogram_quantile(0.99, [1.0, 10.0], [0, 0, 5]) == 10.0


def test_quantile_crosses_buckets():
    # 5 fast + 5 slow: p50 at the first bucket's edge, p99 deep in
    # the second.
    bounds = [1.0, 100.0]
    counts = [5, 5, 0]
    assert histogram_quantile(0.5, bounds, counts) == 1.0
    assert histogram_quantile(0.99, bounds, counts) > 90.0


PAYLOAD = {
    "uptime_s": 12.5,
    "in_flight": 1,
    "connections_open": 2,
    "busy_rejections": 3,
    "bad_frames": 0,
    "responses": {"ok": 40, "error": 2},
    "latency_ms": {
        "count": 42,
        "mean": 3.2,
        "buckets": {"1": 10, "10": 30, "+Inf": 2},
    },
    "expansion_cache": {"hits": 30, "misses": 10, "hit_rate": 0.75},
    "workers": {
        "warm_hits": 35,
        "cold_builds": 7,
        "idle": {"k1": 2, "k2": 1},
        "replenishes": 9,
    },
    "disk_cache": {"hits": 4, "misses": 2, "failures": 1,
                   "evictions": 1},
    "server": {
        "address": "/tmp/ms2.sock",
        "pid": 4242,
        "max_inflight": 4,
        "draining": False,
    },
    "telemetry": {
        "metrics_address": "127.0.0.1:9464",
        "event_log_records": 120,
    },
}


def test_render_dashboard_first_poll():
    text = render_dashboard(PAYLOAD)
    assert "/tmp/ms2.sock" in text
    assert "up 12s" in text or "up 13s" in text
    assert "served 42" in text
    assert "in-flight 1/4" in text
    assert "hit  75.0%" in text
    assert "idle 3" in text
    assert "evictions 1" in text
    assert "http://127.0.0.1:9464/metrics" in text
    assert "DRAINING" not in text
    assert "0.0/s" in text  # no previous poll: rate reads zero


def test_render_dashboard_rate_from_delta():
    prev = dict(PAYLOAD)
    prev["latency_ms"] = {**PAYLOAD["latency_ms"], "count": 22}
    text = render_dashboard(PAYLOAD, prev, dt=2.0)
    assert "10.0/s" in text  # (42 - 22) / 2s


def test_render_dashboard_marks_draining():
    draining = dict(PAYLOAD)
    draining["server"] = {**PAYLOAD["server"], "draining": True}
    assert "[DRAINING]" in render_dashboard(draining)


def test_render_dashboard_quantiles_from_buckets():
    text = render_dashboard(PAYLOAD)
    # 10 of 42 under 1ms, 40 under 10ms: p50 in (1, 10], p99 clamped
    # to the overflow bound.
    assert "p50" in text and "p99" in text
    p50_field = text.split("p50")[1].split("ms")[0]
    assert 1.0 < float(p50_field) < 10.0
