"""MetricsRegistry: the data model, the exposition, the aggregation.

The contract under test: names are validated at registration (never
at scrape), the rendered text is well-formed Prometheus exposition
(cumulative histogram buckets included), snapshots are plain JSON,
and :func:`merge_snapshots` folds N processes' snapshots per each
metric's declared merge mode.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.telemetry import (
    METRIC_NAME_RE,
    MetricsRegistry,
    merge_snapshots,
    new_request_id,
    render_snapshot,
    validate_label_name,
    validate_metric_name,
)

# A permissive line grammar for the exposition format: comments or
# `name{labels} value` samples.  Parsing every rendered line against
# it is the well-formedness check the CI smoke job repeats via HTTP.
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" -?[0-9.eE+]+(Inf)?$"
)


def assert_valid_exposition(text: str) -> dict[str, float]:
    """Parse rendered exposition text; return unlabeled samples."""
    assert text.endswith("\n")
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert SAMPLE_LINE.match(line), f"malformed sample: {line!r}"
        name, _, value = line.partition(" ")
        if "{" not in name:
            samples[name] = float(value.replace("+Inf", "inf"))
    return samples


# ---------------------------------------------------------------------------
# Names
# ---------------------------------------------------------------------------


def test_request_ids_are_16_hex_and_unique():
    ids = {new_request_id() for _ in range(64)}
    assert len(ids) == 64
    for rid in ids:
        assert re.fullmatch(r"[0-9a-f]{16}", rid)


@pytest.mark.parametrize(
    "name", ["ms2_requests_total", "up", "a:b:c", "_private"]
)
def test_valid_metric_names(name):
    assert validate_metric_name(name) == name


@pytest.mark.parametrize(
    "name", ["2bad", "has-dash", "has space", "", "emoji🙂"]
)
def test_invalid_metric_names(name):
    with pytest.raises(ValueError):
        validate_metric_name(name)


@pytest.mark.parametrize("name", ["op", "pool_key", "le"])
def test_valid_label_names(name):
    assert validate_label_name(name) == name


@pytest.mark.parametrize("name", ["__reserved", "with:colon", "9x"])
def test_invalid_label_names(name):
    with pytest.raises(ValueError):
        validate_label_name(name)


def test_registration_rejects_bad_names_immediately():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("bad-name")
    with pytest.raises(ValueError):
        reg.gauge("ok_name", labelnames=("__bad",))


def test_reregistration_same_shape_returns_same_metric():
    reg = MetricsRegistry()
    a = reg.counter("ms2_x_total", "help", ("op",))
    b = reg.counter("ms2_x_total", "other help", ("op",))
    assert a is b


def test_reregistration_conflicting_shape_raises():
    reg = MetricsRegistry()
    reg.counter("ms2_x_total", labelnames=("op",))
    with pytest.raises(ValueError):
        reg.gauge("ms2_x_total")
    with pytest.raises(ValueError):
        reg.counter("ms2_x_total", labelnames=("code",))


# ---------------------------------------------------------------------------
# Samples and rendering
# ---------------------------------------------------------------------------


def test_counter_inc_and_labels():
    reg = MetricsRegistry()
    c = reg.counter("ms2_requests_total", "Requests", ("op",))
    c.inc(op="ping")
    c.inc(2, op="expand")
    with pytest.raises(ValueError):
        c.inc(-1, op="ping")
    with pytest.raises(ValueError):
        c.inc(op="ping", extra="nope")
    text = reg.render_prometheus()
    assert '# TYPE ms2_requests_total counter' in text
    assert 'ms2_requests_total{op="ping"} 1' in text
    assert 'ms2_requests_total{op="expand"} 2' in text
    assert_valid_exposition(text)


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("ms2_in_flight")
    g.set(3)
    g.inc()
    g.dec(2)
    assert "ms2_in_flight 2\n" in reg.render_prometheus()


def test_label_value_escaping():
    reg = MetricsRegistry()
    c = reg.counter("ms2_x_total", labelnames=("path",))
    c.inc(path='a"b\\c\nd')
    text = reg.render_prometheus()
    assert '{path="a\\"b\\\\c\\nd"}' in text
    assert_valid_exposition(text)


def test_histogram_observe_renders_cumulative_buckets():
    reg = MetricsRegistry()
    h = reg.histogram("ms2_latency_ms", "Latency", (1.0, 10.0))
    for value in (0.5, 0.7, 5.0, 99.0):
        h.observe(value)
    text = reg.render_prometheus()
    assert 'ms2_latency_ms_bucket{le="1"} 2' in text
    assert 'ms2_latency_ms_bucket{le="10"} 3' in text
    assert 'ms2_latency_ms_bucket{le="+Inf"} 4' in text
    assert "ms2_latency_ms_count 4" in text
    assert "ms2_latency_ms_sum 105.2" in text
    assert_valid_exposition(text)


def test_histogram_load_mirrors_external_counts():
    reg = MetricsRegistry()
    h = reg.histogram("ms2_latency_ms", buckets=(1.0, 10.0))
    h.load([1, 2, 3], 60.0, 6)
    with pytest.raises(ValueError):
        h.load([1, 2], 1.0, 1)  # wrong arity
    text = reg.render_prometheus()
    assert 'ms2_latency_ms_bucket{le="+Inf"} 6' in text


def test_histogram_buckets_must_be_sorted_unique():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.histogram("ms2_h", buckets=(10.0, 1.0))
    with pytest.raises(ValueError):
        reg.histogram("ms2_h2", buckets=(1.0, 1.0))


def test_collector_runs_at_scrape_time():
    reg = MetricsRegistry()
    c = reg.counter("ms2_mirrored_total")
    external = {"n": 0}
    reg.register_collector(
        lambda r: c.set_total(external["n"])
    )
    external["n"] = 7
    assert "ms2_mirrored_total 7" in reg.render_prometheus()
    external["n"] = 9
    assert "ms2_mirrored_total 9" in reg.render_prometheus()


# ---------------------------------------------------------------------------
# Snapshot / merge (the sharded-serving substrate)
# ---------------------------------------------------------------------------


def _shard(requests: int, peak: int, latencies=()) -> dict:
    reg = MetricsRegistry()
    reg.counter("ms2_requests_total", "Requests").inc(requests)
    reg.gauge("ms2_peak", "Peak", merge="max").set(peak)
    reg.gauge("ms2_version", merge="last").set(1)
    h = reg.histogram("ms2_latency_ms", buckets=(1.0, 10.0))
    for value in latencies:
        h.observe(value)
    return reg.snapshot()


def test_snapshot_is_plain_json():
    snap = _shard(3, 2, latencies=(0.5,))
    rebuilt = json.loads(json.dumps(snap))
    assert rebuilt["version"] == 1
    assert "ms2_requests_total" in rebuilt["metrics"]


def test_merge_sums_counters_and_histograms():
    merged = merge_snapshots(
        [_shard(3, 2, (0.5, 5.0)), _shard(4, 7, (0.7,))]
    )
    text = render_snapshot(merged)
    assert "ms2_requests_total 7" in text
    assert 'ms2_latency_ms_bucket{le="1"} 2' in text
    assert "ms2_latency_ms_count 3" in text
    assert_valid_exposition(text)


def test_merge_modes_max_and_last():
    merged = merge_snapshots([_shard(0, 2), _shard(0, 7), _shard(0, 3)])
    samples = {
        name: entry["samples"]
        for name, entry in merged["metrics"].items()
    }
    assert samples["ms2_peak"][0][1] == 7  # max across shards
    assert samples["ms2_version"][0][1] == 1  # last writer


def test_merge_keeps_series_missing_from_some_shards():
    reg = MetricsRegistry()
    reg.counter("ms2_only_here_total").inc(5)
    merged = merge_snapshots([_shard(1, 1), reg.snapshot()])
    assert "ms2_only_here_total" in merged["metrics"]
    assert "ms2_requests_total" in merged["metrics"]


def test_server_registry_names_are_valid_prometheus_identifiers():
    """Every metric the daemon registers passes the Prometheus name
    grammar, and its exposition parses (the CI unit gate)."""
    from repro.server import Ms2Server

    server = Ms2Server(port=0)
    names = server.registry.metric_names()
    assert len(names) >= 25
    for name in names:
        assert METRIC_NAME_RE.match(name), name
    assert_valid_exposition(server.registry.render_prometheus())
