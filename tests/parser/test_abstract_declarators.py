"""Abstract declarators: casts, sizeof, unnamed prototype parameters."""

import pytest

from repro.cast import decls, nodes, render_c
from tests.conftest import assert_c_equal, parse_c, parse_expr


class TestCasts:
    def test_cast_to_pointer(self):
        tree = parse_expr("(char *) p")
        assert isinstance(tree, nodes.Cast)
        assert isinstance(
            tree.type_name.declarator, decls.PointerDeclarator
        )

    def test_cast_to_pointer_to_pointer(self):
        tree = parse_expr("(char **) p")
        inner = tree.type_name.declarator
        assert isinstance(inner.inner, decls.PointerDeclarator)

    def test_cast_to_function_pointer(self):
        tree = parse_expr("(int (*)(int)) f")
        declarator = tree.type_name.declarator
        assert isinstance(declarator, decls.FuncDeclarator)
        assert isinstance(declarator.inner, decls.PointerDeclarator)

    def test_cast_to_array_pointer(self):
        tree = parse_expr("(int (*)[4]) p")
        declarator = tree.type_name.declarator
        assert isinstance(declarator, decls.ArrayDeclarator)

    def test_cast_round_trips(self):
        for text in ("(char *)p", "(int (*)(int))f",
                     "(unsigned long)x", "(struct point *)q"):
            unit_text = f"void f(void) {{ y = {text}; }}"
            assert_c_equal(render_c(parse_c(unit_text)), unit_text)


class TestUnnamedParameters:
    def test_prototype_with_abstract_params(self):
        unit = parse_c("int f(int, char *);")
        declarator = unit.items[0].init_declarators[0].declarator
        params = declarator.params
        assert isinstance(params[0].declarator, decls.AbstractDeclarator)
        assert isinstance(params[1].declarator, decls.PointerDeclarator)

    def test_round_trip(self):
        src = "int strncmp(char *, char *, unsigned long);"
        assert_c_equal(render_c(parse_c(src)), src)

    def test_array_parameter(self):
        src = "void sort(int a[], int n);"
        assert_c_equal(render_c(parse_c(src)), src)


class TestSizeofTypes:
    def test_sizeof_pointer_type(self):
        tree = parse_expr("sizeof(char *)")
        assert isinstance(tree, nodes.SizeofType)

    def test_sizeof_struct(self):
        tree = parse_expr("sizeof(struct point)")
        assert isinstance(tree, nodes.SizeofType)

    def test_sizeof_typedef_requires_registration(self):
        from repro.parser.core import Parser

        parser = Parser("typedef int myint; int n = sizeof(myint);")
        unit = parser.parse_program()
        init = unit.items[1].init_declarators[0].init
        assert isinstance(init, nodes.SizeofType)
