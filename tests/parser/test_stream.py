"""Tests for the token stream (pushback, savepoints)."""

import pytest

from repro.errors import ParseError
from repro.lexer.scanner import tokenize
from repro.lexer.tokens import Token, TokenKind
from repro.parser.stream import TokenStream


def stream_for(source: str) -> TokenStream:
    return TokenStream(tokenize(source))


class TestBasics:
    def test_requires_eof_terminated_list(self):
        with pytest.raises(ValueError):
            TokenStream(tokenize("a b")[:-1])

    def test_next_advances(self):
        s = stream_for("a b c")
        assert s.next().text == "a"
        assert s.next().text == "b"

    def test_peek_does_not_advance(self):
        s = stream_for("a b")
        assert s.peek().text == "a"
        assert s.peek().text == "a"
        assert s.next().text == "a"

    def test_peek_ahead(self):
        s = stream_for("a b c")
        assert s.peek(2).text == "c"
        assert s.peek(99).kind is TokenKind.EOF

    def test_eof_is_sticky(self):
        s = stream_for("a")
        s.next()
        assert s.next().kind is TokenKind.EOF
        assert s.next().kind is TokenKind.EOF
        assert s.at_eof()


class TestPushback:
    def test_pushed_token_returned_first(self):
        s = stream_for("a b")
        synthetic = Token(TokenKind.PLACEHOLDER, "$x")
        s.push(synthetic)
        assert s.next() is synthetic
        assert s.next().text == "a"

    def test_peek_sees_pushback(self):
        s = stream_for("a")
        synthetic = Token(TokenKind.PLACEHOLDER, "$x")
        s.push(synthetic)
        assert s.peek() is synthetic
        assert s.peek(1).text == "a"

    def test_multiple_pushbacks_lifo(self):
        s = stream_for("a")
        first = Token(TokenKind.IDENT, "first")
        second = Token(TokenKind.IDENT, "second")
        s.push(first)
        s.push(second)
        assert s.next() is second
        assert s.next() is first


class TestSavepoints:
    def test_restore_rewinds(self):
        s = stream_for("a b c")
        state = s.save()
        s.next()
        s.next()
        s.restore(state)
        assert s.peek().text == "a"

    def test_restore_recovers_pushback(self):
        s = stream_for("a b")
        s.push(Token(TokenKind.IDENT, "extra"))
        state = s.save()
        s.next()  # consumes 'extra'
        s.next()  # consumes 'a'
        s.restore(state)
        assert s.next().text == "extra"
        assert s.next().text == "a"


class TestExpectHelpers:
    def test_expect_punct(self):
        s = stream_for("( x")
        assert s.expect_punct("(").text == "("
        with pytest.raises(ParseError):
            s.expect_punct(")")

    def test_expect_keyword(self):
        s = stream_for("while x")
        assert s.expect_keyword("while").text == "while"
        with pytest.raises(ParseError):
            s.expect_keyword("for")

    def test_expect_ident(self):
        s = stream_for("name 42")
        assert s.expect_ident().text == "name"
        with pytest.raises(ParseError):
            s.expect_ident()

    def test_accept_returns_none_on_mismatch(self):
        s = stream_for("a")
        assert s.accept_punct(";") is None
        assert s.peek().text == "a"

    def test_error_message_includes_expected_token(self):
        s = stream_for("x")
        with pytest.raises(ParseError) as exc:
            s.expect_punct(";")
        assert "';'" in str(exc.value)
