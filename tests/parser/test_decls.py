"""Tests for declaration parsing (including typedef context sensitivity)."""

import pytest

from repro.cast import ctypes, decls, nodes
from repro.errors import ParseError
from repro.parser.core import Parser
from tests.conftest import parse_c


def first_decl(source: str) -> decls.Declaration:
    unit = parse_c(source)
    item = unit.items[0]
    assert isinstance(item, decls.Declaration)
    return item


class TestBasicDeclarations:
    def test_simple_int(self):
        d = first_decl("int x;")
        assert isinstance(d.specs.type_spec, ctypes.PrimitiveType)
        assert d.specs.type_spec.names == ["int"]

    def test_multi_word_type(self):
        d = first_decl("unsigned long long x;")
        assert d.specs.type_spec.names == ["unsigned", "long", "long"]

    def test_storage_class(self):
        d = first_decl("static int x;")
        assert d.specs.storage == ["static"]

    def test_qualifiers(self):
        d = first_decl("const volatile int x;")
        assert d.specs.qualifiers == ["const", "volatile"]

    def test_multiple_declarators(self):
        d = first_decl("int a, b, c;")
        assert len(d.init_declarators) == 3

    def test_initializer(self):
        d = first_decl("int x = 5;")
        init = d.init_declarators[0].init
        assert init == nodes.IntLit(5, "5")

    def test_braced_initializer(self):
        d = first_decl("int a[2] = {1, 2};")
        assert isinstance(d.init_declarators[0].init, decls.ListInitializer)

    def test_nested_braced_initializer(self):
        d = first_decl("int a[2][2] = {{1, 2}, {3, 4}};")
        outer = d.init_declarators[0].init
        assert isinstance(outer.items[0], decls.ListInitializer)


class TestDeclarators:
    def declarator_of(self, source: str):
        return first_decl(source).init_declarators[0].declarator

    def test_pointer(self):
        d = self.declarator_of("int *p;")
        assert isinstance(d, decls.PointerDeclarator)

    def test_pointer_with_qualifier(self):
        d = self.declarator_of("char *const p;")
        assert d.qualifiers == ["const"]

    def test_array(self):
        d = self.declarator_of("int a[10];")
        assert isinstance(d, decls.ArrayDeclarator)
        assert d.size == nodes.IntLit(10, "10")

    def test_unsized_array(self):
        d = self.declarator_of("int a[];")
        assert d.size is None

    def test_array_of_pointers(self):
        d = self.declarator_of("int *a[4];")
        # Grammar shape: pointer applied last.
        assert isinstance(d, decls.PointerDeclarator)
        assert isinstance(d.inner, decls.ArrayDeclarator)

    def test_pointer_to_array(self):
        d = self.declarator_of("int (*a)[4];")
        assert isinstance(d, decls.ArrayDeclarator)
        assert isinstance(d.inner, decls.PointerDeclarator)

    def test_function_pointer(self):
        d = self.declarator_of("int (*fp)(int);")
        assert isinstance(d, decls.FuncDeclarator)
        assert isinstance(d.inner, decls.PointerDeclarator)

    def test_prototype_params(self):
        d = self.declarator_of("int f(int a, char *b);")
        assert isinstance(d, decls.FuncDeclarator)
        assert d.prototype
        assert len(d.params) == 2

    def test_variadic(self):
        d = self.declarator_of("int f(char *fmt, ...);")
        assert d.variadic

    def test_empty_parens_not_prototype(self):
        d = self.declarator_of("int f();")
        assert isinstance(d, decls.FuncDeclarator)
        assert not d.prototype
        assert d.params == []
        assert d.kr_names == []


class TestTypedef:
    def test_typedef_registers_name(self):
        parser = Parser("typedef int myint;")
        parser.parse_program()
        assert parser.is_typedef_name("myint")

    def test_typedef_name_usable_as_type(self):
        unit = parse_c("typedef int myint; myint x;")
        d = unit.items[1]
        assert isinstance(d.specs.type_spec, ctypes.TypedefNameType)
        assert d.specs.type_spec.name == "myint"

    def test_typedef_pointer_declaration_vs_expression(self):
        # The paper's example: 'foo * i;' is a declaration iff foo is
        # a typedef name.
        unit = parse_c(
            "typedef int foo;\n"
            "void f(void) { foo * i; }"
        )
        body = unit.items[1].body
        assert len(body.decls) == 1
        assert len(body.stmts) == 0

    def test_non_typedef_star_is_multiplication(self):
        unit = parse_c(
            "void f(int foo, int i) { foo * i; }"
        )
        body = unit.items[-1].body
        assert len(body.decls) == 0
        assert isinstance(body.stmts[0].expr, nodes.BinaryOp)

    def test_block_scoped_typedef_expires(self):
        parser = Parser(
            "void f(void) { typedef int local_t; local_t x; x = 1; }"
        )
        parser.parse_program()
        assert not parser.is_typedef_name("local_t")


class TestStructUnionEnum:
    def test_struct_definition(self):
        d = first_decl("struct point {int x; int y;};")
        ts = d.specs.type_spec
        assert ts.kind == "struct"
        assert ts.tag == "point"
        assert len(ts.members) == 2

    def test_struct_reference(self):
        d = first_decl("struct point p;")
        assert d.specs.type_spec.members is None

    def test_anonymous_struct(self):
        d = first_decl("struct {int x;} s;")
        assert d.specs.type_spec.tag is None

    def test_union(self):
        d = first_decl("union u {int i; float f;};")
        assert d.specs.type_spec.kind == "union"

    def test_enum_with_enumerators(self):
        d = first_decl("enum color {red, green, blue};")
        names = [e.name for e in d.specs.type_spec.enumerators]
        assert names == ["red", "green", "blue"]

    def test_enum_with_values(self):
        d = first_decl("enum f {a = 1, b = 2};")
        assert d.specs.type_spec.enumerators[0].value == nodes.IntLit(1, "1")

    def test_enum_trailing_comma(self):
        d = first_decl("enum c {x, y,};")
        assert len(d.specs.type_spec.enumerators) == 2

    def test_bare_struct_or_enum_requires_tag_or_body(self):
        with pytest.raises(ParseError):
            parse_c("struct;")
        with pytest.raises(ParseError):
            parse_c("enum;")


class TestFunctionDefinitions:
    def test_prototype_style(self):
        unit = parse_c("int add(int a, int b) {return a + b;}")
        fn = unit.items[0]
        assert isinstance(fn, decls.FunctionDef)
        assert fn.kr_decls == []

    def test_kr_style(self):
        unit = parse_c(
            "int foo(a, b, c)\nint a, b;\nint *c;\n{return a;}"
        )
        fn = unit.items[0]
        assert isinstance(fn, decls.FunctionDef)
        declarator = fn.declarator
        assert declarator.kr_names == ["a", "b", "c"]
        assert len(fn.kr_decls) == 2

    def test_pointer_return(self):
        unit = parse_c("int *f(void) {return 0;}")
        assert isinstance(unit.items[0], decls.FunctionDef)

    def test_declaration_not_definition(self):
        unit = parse_c("int f(int x);")
        assert isinstance(unit.items[0], decls.Declaration)


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_c("int x")

    def test_junk_specifier(self):
        with pytest.raises(ParseError):
            parse_c("+ x;")

    def test_bad_struct_member(self):
        with pytest.raises(ParseError):
            parse_c("struct s {int;x};")
