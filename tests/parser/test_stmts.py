"""Tests for statement parsing."""

import pytest

from repro.cast import decls, nodes, stmts
from repro.errors import ParseError
from tests.conftest import parse_c, parse_stmt


class TestSimpleStatements:
    def test_expression_statement(self):
        s = parse_stmt("x = 1;")
        assert isinstance(s, stmts.ExprStmt)

    def test_null_statement(self):
        assert isinstance(parse_stmt(";"), stmts.NullStmt)

    def test_break(self):
        assert isinstance(parse_stmt("break;"), stmts.BreakStmt)

    def test_continue(self):
        assert isinstance(parse_stmt("continue;"), stmts.ContinueStmt)

    def test_return_void(self):
        s = parse_stmt("return;")
        assert s.expr is None

    def test_return_value(self):
        s = parse_stmt("return x + 1;")
        assert isinstance(s.expr, nodes.BinaryOp)

    def test_goto(self):
        s = parse_stmt("goto done;")
        assert s.label == "done"

    def test_label(self):
        s = parse_stmt("done: return;")
        assert isinstance(s, stmts.LabeledStmt)
        assert s.label == "done"
        assert isinstance(s.stmt, stmts.ReturnStmt)


class TestControlFlow:
    def test_if(self):
        s = parse_stmt("if (a) b();")
        assert isinstance(s, stmts.IfStmt)
        assert s.otherwise is None

    def test_if_else(self):
        s = parse_stmt("if (a) b(); else c();")
        assert s.otherwise is not None

    def test_dangling_else_binds_inner(self):
        s = parse_stmt("if (a) if (b) x(); else y();")
        assert s.otherwise is None
        assert s.then.otherwise is not None

    def test_while(self):
        s = parse_stmt("while (n) n--;")
        assert isinstance(s, stmts.WhileStmt)

    def test_do_while(self):
        s = parse_stmt("do n--; while (n);")
        assert isinstance(s, stmts.DoWhileStmt)

    def test_for_full(self):
        s = parse_stmt("for (i = 0; i < n; i++) f();")
        assert s.init is not None
        assert s.cond is not None
        assert s.step is not None

    def test_for_empty(self):
        s = parse_stmt("for (;;) f();")
        assert s.init is None and s.cond is None and s.step is None

    def test_switch_with_cases(self):
        s = parse_stmt(
            "switch (x) {case 1: a(); break; case 2: b(); break; "
            "default: c();}"
        )
        assert isinstance(s, stmts.SwitchStmt)
        body = s.body
        assert isinstance(body.stmts[0], stmts.CaseStmt)
        assert isinstance(body.stmts[-1], stmts.DefaultStmt)


class TestCompound:
    def test_decls_then_stmts(self):
        s = parse_stmt("{int x; int y; x = 1; y = 2;}")
        assert len(s.decls) == 2
        assert len(s.stmts) == 2

    def test_empty(self):
        s = parse_stmt("{}")
        assert s.decls == [] and s.stmts == []

    def test_nested(self):
        s = parse_stmt("{{x;}}")
        assert isinstance(s.stmts[0], stmts.CompoundStmt)

    def test_declaration_after_statement_goes_wrong_in_c90(self):
        # C90: declarations must precede statements; a later 'int y;'
        # is parsed as... an error in our grammar.
        with pytest.raises(ParseError):
            parse_stmt("{x = 1; int y;}")


class TestContextSensitivity:
    def test_typedef_changes_statement_parse(self):
        unit = parse_c(
            "typedef int T;\n"
            "void f(void) { T *p; }"
        )
        body = unit.items[1].body
        assert isinstance(body.decls[0], decls.Declaration)

    def test_same_text_without_typedef_is_expression(self):
        unit = parse_c("void f(int T, int p) { T * p; }")
        body = unit.items[0].body
        assert body.decls == []
        assert isinstance(body.stmts[0].expr, nodes.BinaryOp)


class TestErrors:
    def test_missing_paren(self):
        with pytest.raises(ParseError):
            parse_stmt("if a) b();")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_stmt("x = 1")

    def test_do_requires_while(self):
        with pytest.raises(ParseError):
            parse_stmt("do x(); until (y);")

    def test_unclosed_compound(self):
        with pytest.raises(ParseError):
            parse_stmt("{x();")
