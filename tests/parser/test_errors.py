"""Error reporting: every parse failure carries a usable location."""

import pytest

from repro import MacroProcessor
from repro.errors import (
    MacroSyntaxError,
    MacroTypeError,
    ParseError,
    PatternLookaheadError,
)
from tests.conftest import parse_c


def location_of(source: str):
    with pytest.raises(ParseError) as exc:
        parse_c(source)
    return exc.value.location


class TestLocations:
    def test_error_points_at_offending_token(self):
        loc = location_of("int x = + ;")
        assert loc.line == 1
        # Points at the ';' that cannot start an operand.
        assert loc.column >= 9

    def test_multiline_location(self):
        loc = location_of("int ok;\nint bad = ;\n")
        assert loc.line == 2

    def test_filename_propagates(self):
        from repro.parser.core import Parser

        with pytest.raises(ParseError) as exc:
            Parser("int = 4;", filename="widget.c").parse_program()
        assert exc.value.location.filename == "widget.c"
        assert "widget.c" in str(exc.value)


class TestMessages:
    def expect_message(self, source: str, *fragments: str):
        with pytest.raises(ParseError) as exc:
            parse_c(source)
        message = str(exc.value)
        for fragment in fragments:
            assert fragment in message, message

    def test_expected_semicolon(self):
        self.expect_message("int x", "';'", "end of input")

    def test_expected_expression(self):
        self.expect_message("int x = ;", "expected an expression")

    def test_expected_declarator(self):
        self.expect_message("int = 4;", "declarator")

    def test_unbalanced_paren_in_condition(self):
        self.expect_message("void f(void) { if (a b(); }", "')'")


class TestMacroErrorClasses:
    def test_pattern_error_is_macro_syntax_error(self, mp):
        with pytest.raises(MacroSyntaxError):
            mp.load("syntax stmt m {| |} { return(`{;}); }")

    def test_lookahead_error_subclass(self, mp):
        with pytest.raises(PatternLookaheadError):
            mp.load("syntax stmt m {| $$+stmt::b |} { return(`{{$b}}); }")

    def test_type_error_at_definition(self, mp):
        with pytest.raises(MacroTypeError) as exc:
            mp.load(
                "syntax stmt m {| ( ) |} { return(1 + 2); }"
            )
        assert "return" in str(exc.value).lower()

    def test_bad_ast_specifier_in_header(self, mp):
        with pytest.raises(MacroSyntaxError) as exc:
            mp.load("syntax statement m {| ( ) |} { return(`{;}); }")
        assert "AST specifier" in str(exc.value)

    def test_unterminated_pattern(self, mp):
        with pytest.raises(MacroSyntaxError) as exc:
            mp.load("syntax stmt m {| ( $$exp::e )")
        assert "|}" in str(exc.value)

    def test_macro_def_inside_template_rejected(self, mp):
        with pytest.raises((MacroSyntaxError, ParseError, MacroTypeError)):
            mp.load(
                "syntax stmt outer {| ( ) |}"
                "{ return(`{syntax stmt inner {| ( ) |} { return(`{;}); }});"
                "}"
            )


class TestRecoveryBoundaries:
    def test_at_outside_meta_context_ok_in_decl_specs(self):
        # '@' parses as an AST type spec anywhere; using it in plain C
        # is then caught by the meta machinery or simply kept as a
        # meta declaration.
        from repro.parser.core import Parser

        parser = Parser("@stmt s;")
        unit = parser.parse_program()
        assert unit.items  # parsed as an (implicit) meta declaration

    def test_dollar_outside_template_is_error(self):
        with pytest.raises(Exception):
            parse_c("int $x;")
