"""Tests for the operator-precedence expression parser."""

import pytest

from repro.cast import nodes, render_sexpr
from repro.errors import ParseError
from tests.conftest import parse_expr


def sexpr(source: str) -> str:
    return render_sexpr(parse_expr(source))


class TestPrecedence:
    def test_mul_binds_tighter_than_add(self):
        assert sexpr("a + b * c") == "(+ (id a) (* (id b) (id c)))"

    def test_add_binds_tighter_than_shift(self):
        assert sexpr("a << b + c") == "(<< (id a) (+ (id b) (id c)))"

    def test_relational_over_equality(self):
        assert sexpr("a == b < c") == "(== (id a) (< (id b) (id c)))"

    def test_bitand_over_xor_over_or(self):
        assert sexpr("a | b ^ c & d") == (
            "(| (id a) (^ (id b) (& (id c) (id d))))"
        )

    def test_logical_and_over_or(self):
        assert sexpr("a || b && c") == "(|| (id a) (&& (id b) (id c)))"

    def test_left_associativity(self):
        assert sexpr("a - b - c") == "(- (- (id a) (id b)) (id c))"

    def test_parens_override(self):
        assert sexpr("(a + b) * c") == "(* (+ (id a) (id b)) (id c))"

    def test_division_left_assoc(self):
        assert sexpr("a / b / c") == "(/ (/ (id a) (id b)) (id c))"


class TestAssignment:
    def test_simple(self):
        tree = parse_expr("x = 1")
        assert isinstance(tree, nodes.AssignOp)
        assert tree.op == "="

    def test_right_associative(self):
        tree = parse_expr("a = b = c")
        assert isinstance(tree.value, nodes.AssignOp)

    def test_compound_operators(self):
        for op in ("+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=",
                   "^=", "|="):
            tree = parse_expr(f"x {op} 1")
            assert isinstance(tree, nodes.AssignOp)
            assert tree.op == op

    def test_assignment_below_conditional(self):
        tree = parse_expr("x = a ? b : c")
        assert isinstance(tree, nodes.AssignOp)
        assert isinstance(tree.value, nodes.ConditionalOp)


class TestConditional:
    def test_shape(self):
        tree = parse_expr("a ? b : c")
        assert isinstance(tree, nodes.ConditionalOp)

    def test_right_associative(self):
        tree = parse_expr("a ? b : c ? d : e")
        assert isinstance(tree.otherwise, nodes.ConditionalOp)

    def test_comma_allowed_in_then(self):
        tree = parse_expr("a ? (b, c) : d")
        assert isinstance(tree.then, nodes.CommaOp)


class TestUnaryPostfix:
    def test_prefix_operators(self):
        for op in ("-", "+", "!", "~", "*", "&"):
            tree = parse_expr(f"{op}x")
            assert isinstance(tree, nodes.UnaryOp)
            assert tree.op == op

    def test_prefix_increment(self):
        tree = parse_expr("++x")
        assert isinstance(tree, nodes.UnaryOp)
        assert tree.op == "++"

    def test_postfix_increment(self):
        tree = parse_expr("x++")
        assert isinstance(tree, nodes.PostfixOp)

    def test_postfix_chain(self):
        tree = parse_expr("a.b[1](x)->c")
        assert isinstance(tree, nodes.Member)
        assert tree.arrow

    def test_call_no_args(self):
        tree = parse_expr("f()")
        assert isinstance(tree, nodes.Call)
        assert tree.args == []

    def test_call_multiple_args(self):
        tree = parse_expr("f(a, b, c)")
        assert len(tree.args) == 3

    def test_nested_calls(self):
        tree = parse_expr("f(g(x))")
        assert isinstance(tree.args[0], nodes.Call)

    def test_unary_binds_tighter_than_binary(self):
        assert sexpr("-a * b") == "(* (unary - (id a)) (id b))"

    def test_deref_of_call(self):
        tree = parse_expr("*f(x)")
        assert isinstance(tree, nodes.UnaryOp)
        assert isinstance(tree.operand, nodes.Call)

    def test_address_of(self):
        tree = parse_expr("&ps")
        assert tree.op == "&"


class TestSizeofAndCasts:
    def test_sizeof_expression(self):
        tree = parse_expr("sizeof x")
        assert isinstance(tree, nodes.SizeofExpr)

    def test_sizeof_type(self):
        tree = parse_expr("sizeof(int)")
        assert isinstance(tree, nodes.SizeofType)

    def test_sizeof_parenthesized_expr(self):
        tree = parse_expr("sizeof(x)")
        assert isinstance(tree, nodes.SizeofExpr)

    def test_cast(self):
        tree = parse_expr("(long) x")
        assert isinstance(tree, nodes.Cast)

    def test_cast_of_cast(self):
        tree = parse_expr("(int)(long) x")
        assert isinstance(tree, nodes.Cast)
        assert isinstance(tree.operand, nodes.Cast)

    def test_cast_pointer_type(self):
        tree = parse_expr("(char *) p")
        assert isinstance(tree, nodes.Cast)

    def test_paren_expr_is_not_cast(self):
        tree = parse_expr("(x) + 1")
        assert isinstance(tree, nodes.BinaryOp)


class TestLiterals:
    def test_int(self):
        assert parse_expr("42") == nodes.IntLit(42, "42")

    def test_char(self):
        tree = parse_expr("'a'")
        assert isinstance(tree, nodes.CharLit)
        assert tree.value == ord("a")

    def test_string_concatenation(self):
        tree = parse_expr('"foo" "bar"')
        assert isinstance(tree, nodes.StringLit)
        assert tree.value == "foobar"

    def test_float(self):
        tree = parse_expr("2.5")
        assert isinstance(tree, nodes.FloatLit)


class TestComma:
    def test_comma_sequence(self):
        tree = parse_expr("a, b, c")
        assert isinstance(tree, nodes.CommaOp)
        assert isinstance(tree.left, nodes.CommaOp)

    def test_comma_excluded_from_arguments(self):
        tree = parse_expr("f(a, b)")
        assert len(tree.args) == 2


class TestErrors:
    def test_missing_operand(self):
        with pytest.raises(ParseError):
            parse_expr("a + ")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_expr("(a + b")

    def test_backquote_outside_meta_mode(self):
        with pytest.raises(ParseError) as exc:
            parse_expr("`(x)")
        assert "meta-code" in str(exc.value)

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as exc:
            parse_expr("a + )")
        assert exc.value.location is not None
