"""Fast-path parity sweep.

The perf layers (expansion cache, compiled dispatch, master-regex
scanner) are pure optimizations: for any macro program and any
(hygienic, compiled_patterns) configuration, enabling or disabling
them must not change a single byte of the emitted C.  This sweep
drives every shipped package and every ``examples/`` program through
all four (hygienic, compiled_patterns) combinations, each with the
cache on and off, and compares the output byte-for-byte against the
interpreted, uncached engine.
"""

from __future__ import annotations

import importlib.util
import itertools
from pathlib import Path

import pytest

from repro import MacroProcessor, Ms2Options
from repro import packages

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"


def _example(name: str):
    """Import an ``examples/`` script as a module (guarded main)."""
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ---------------------------------------------------------------------------
# One exercising program per package in src/repro/packages/
# ---------------------------------------------------------------------------

PACKAGE_CASES = {
    "contracts": (
        lambda mp: packages.contracts.register(mp),
        "void f(int n) { require (n > 0); ensure (n < 9); "
        "check_range (n, 0, 9); }",
    ),
    "dispatch": (
        lambda mp: packages.dispatch.register(mp),
        lambda: _example("window_dispatch").PROGRAM,
    ),
    "dynbind": (
        lambda mp: packages.dynbind.register(mp),
        "void f(void) { int depth; dynamic_bind {int depth = 1} {go();} }",
    ),
    "enumio": (
        lambda mp: packages.enumio.register(mp),
        "myenum fruit {apple, banana, kiwi};",
    ),
    "exceptions": (
        lambda mp: packages.exceptions.register(mp),
        "void f(int *c) {\n"
        "    catch division_by_zero {handle();} {*c = freq();}\n"
        "    unwind_protect {start();} {stop();}\n"
        "    throw division_by_zero;\n"
        "}",
    ),
    "loops": (
        lambda mp: packages.loops.register(mp),
        "void f(int a, int b) {\n"
        "    int j;\n"
        "    unless (done()) { step(); }\n"
        "    for_range j = 0 to 9 { tick(j); }\n"
        "    unroll (4) { work(i); }\n"
        "    with_resource (open_it(), close_it()) { use(); }\n"
        "    swap (int, a, b);\n"
        "    forever { poll(); }\n"
        "}",
    ),
    "painting": (
        lambda mp: packages.painting.register(mp),
        "void f(void) { Painting { draw(); } }",
    ),
    "painting-protected": (
        lambda mp: (
            packages.exceptions.register(mp),
            packages.painting.register(mp, protected=True),
        ),
        "void f(void) { Painting { draw(); } }",
    ),
    "portvm": (
        lambda mp: packages.portvm.register(mp),
        "vm_target unix;\n"
        "void f(void) {\n"
        "    int h;\n"
        "    vm_open(h, path);\n"
        "    vm_sleep(250);\n"
        "    vm_yield();\n"
        "    vm_close(h);\n"
        "}",
    ),
    "semantic": (
        lambda mp: packages.semantic.register(mp),
        "void f(int a, int b) {\n"
        "    int depth;\n"
        "    sdynamic_bind {depth = 1} {g();}\n"
        "    sswap (a, b);\n"
        "    show (a);\n"
        "}",
    ),
    "statemachine": (
        lambda mp: packages.statemachine.register(mp),
        lambda: _example("state_machine").PROGRAM,
    ),
    "structio": (
        lambda mp: packages.structio.register(mp),
        lambda: _example("serialization").PROGRAM,
    ),
}

# ---------------------------------------------------------------------------
# Every examples/ program (register exactly as the script does)
# ---------------------------------------------------------------------------

EXAMPLE_CASES = {
    "quickstart": (lambda mp: None, lambda: _example("quickstart").PROGRAM),
    "capture_lint": (
        lambda mp: mp.load(_example("capture_lint").CAPTURING_MACRO),
        lambda: _example("capture_lint").PROGRAM,
    ),
    "capture_lint-gensym": (
        lambda mp: mp.load(_example("capture_lint").GENSYM_MACRO),
        lambda: _example("capture_lint").PROGRAM,
    ),
    "exceptions_demo": (
        lambda mp: (
            packages.exceptions.register(mp),
            packages.painting.register(mp, protected=True),
        ),
        lambda: _example("exceptions_demo").PROGRAM,
    ),
    "enum_io": (
        lambda mp: packages.enumio.register(mp),
        lambda: _example("enum_io").PROGRAM,
    ),
    "portable_vm-unix": (
        lambda mp: packages.portvm.register(mp),
        lambda: "vm_target unix;\n" + _example("portable_vm").PROGRAM,
    ),
    "portable_vm-windows": (
        lambda mp: packages.portvm.register(mp),
        lambda: "vm_target windows;\n" + _example("portable_vm").PROGRAM,
    ),
    "semantic_macros": (
        lambda mp: packages.semantic.register(mp),
        lambda: _example("semantic_macros").PROGRAM,
    ),
    "serialization": (
        lambda mp: packages.structio.register(mp),
        lambda: _example("serialization").PROGRAM,
    ),
    "state_machine": (
        lambda mp: packages.statemachine.register(mp),
        lambda: _example("state_machine").PROGRAM,
    ),
    "window_dispatch": (
        lambda mp: packages.dispatch.register(mp),
        lambda: _example("window_dispatch").PROGRAM,
    ),
    "taxonomy_tour": (
        lambda mp: [
            mp.load(src) for src in _example("taxonomy_tour").TRACE_SOURCES
        ],
        lambda: _example("taxonomy_tour").TRACE_PROGRAM,
    ),
}

ALL_CASES = {**PACKAGE_CASES, **EXAMPLE_CASES}


def _expand(case: str, **kwargs) -> str:
    setup, program = ALL_CASES[case]
    if callable(program):
        program = program()
    mp = MacroProcessor(options=Ms2Options(**kwargs))
    setup(mp)
    return mp.expand_to_c(program)


class TestFastPathParity:
    @pytest.mark.parametrize("case", sorted(ALL_CASES))
    @pytest.mark.parametrize("hygienic", [False, True])
    def test_all_configurations_byte_identical(self, case, hygienic):
        """For a fixed hygiene setting, every combination of
        (compiled_patterns, cache) must produce the same C text as
        the interpreted, uncached engine."""
        reference = _expand(
            case, hygienic=hygienic, compiled_patterns=False, cache=False
        )
        for compiled, cache in itertools.product([False, True], repeat=2):
            if not compiled and not cache:
                continue
            out = _expand(
                case,
                hygienic=hygienic,
                compiled_patterns=compiled,
                cache=cache,
            )
            assert out == reference, (
                f"{case}: output diverged with hygienic={hygienic}, "
                f"compiled_patterns={compiled}, cache={cache}"
            )

    def test_sweep_covers_every_package(self):
        """A new package module must be added to the sweep."""
        pkg_dir = REPO_ROOT / "src" / "repro" / "packages"
        modules = {
            p.stem for p in pkg_dir.glob("*.py") if p.stem != "__init__"
        }
        covered = {name.split("-")[0] for name in PACKAGE_CASES}
        assert modules <= covered, (
            f"packages missing from parity sweep: {modules - covered}"
        )

    def test_sweep_covers_every_example_program(self):
        """A new examples/ script with a PROGRAM must join the sweep."""
        with_program = {
            p.stem
            for p in EXAMPLES_DIR.glob("*.py")
            if "PROGRAM = " in p.read_text()
        }
        covered = {name.split("-")[0] for name in EXAMPLE_CASES}
        assert with_program <= covered, (
            f"examples missing from parity sweep: {with_program - covered}"
        )

    def test_repeat_invocations_hit_cache_without_changing_output(self):
        src = "void f() {\n" + "unroll (3) { a[i] = i; }\n" * 5 + "}\n"
        mp = MacroProcessor()
        packages.loops.register(mp)
        fast = mp.expand_to_c(src)
        assert mp.stats.cache_hits == 4
        slow = MacroProcessor(
            options=Ms2Options(cache=False, compiled_patterns=False)
        )
        packages.loops.register(slow)
        assert fast == slow.expand_to_c(src)
