"""Deferred expansion: parse with invocations left in, expand later.

The paper's system expands during parsing; the engine also supports a
two-phase mode (``expand_inline=False``) where
:class:`~repro.cast.nodes.MacroInvocation` nodes stay in the tree and
:meth:`Expander.expand_tree` runs afterwards — useful for tooling that
wants to *inspect* invocations (IDE hovers, macro-usage statistics)
before committing to expansion.
"""

import pytest

from repro import MacroProcessor
from repro.cast import nodes
from repro.cast.base import walk
from repro.parser.core import Parser

MACROS = """
syntax stmt trace {| $$stmt::body |}
{ return(`{{enter(); $body; leave();}}); }

syntax exp twice {| ( $$exp::e ) |}
{ return(`(2 * ($e))); }
"""

PROGRAM = "void f(void) { trace work(twice(3)); }"


def parse_deferred(mp: MacroProcessor):
    parser = Parser(PROGRAM, host=mp, expand_inline=False)
    return parser.parse_program()


class TestDeferredParse:
    def test_invocations_left_in_tree(self, mp):
        mp.load(MACROS)
        unit = parse_deferred(mp)
        invocations = [
            n for n in walk(unit) if isinstance(n, nodes.MacroInvocation)
        ]
        # 'twice' is nested inside 'trace''s actual parameter.
        names = sorted({inv.name for inv in invocations})
        assert names == ["trace", "twice"]

    def test_invocation_args_inspectable(self, mp):
        mp.load(MACROS)
        unit = parse_deferred(mp)
        trace_inv = next(
            n
            for n in walk(unit)
            if isinstance(n, nodes.MacroInvocation) and n.name == "trace"
        )
        assert trace_inv.args[0].name == "body"

    def test_deferred_expansion_matches_inline(self, mp):
        from repro.cast.printer import render_c

        mp.load(MACROS)
        deferred_unit = parse_deferred(mp)
        expanded = mp.expander.expand_tree(deferred_unit)
        deferred_out = render_c(expanded)

        inline = MacroProcessor()
        inline.load(MACROS)
        inline_out = inline.expand_to_c(PROGRAM)
        assert deferred_out == inline_out

    def test_expand_tree_is_complete(self, mp):
        mp.load(MACROS)
        unit = parse_deferred(mp)
        expanded = mp.expander.expand_tree(unit)
        assert not [
            n for n in walk(expanded)
            if isinstance(n, nodes.MacroInvocation)
        ]

    def test_state_macros_expand_in_document_order(self, mp):
        mp.load(
            "metadcl int n;\n"
            "syntax exp tick {| ( ) |}"
            "{ n = n + 1; return(make_num(n)); }"
        )
        parser = Parser(
            "void f(void) { a = tick(); b = tick(); }",
            host=mp, expand_inline=False,
        )
        unit = parser.parse_program()
        from repro.cast.printer import render_c

        out = render_c(mp.expander.expand_tree(unit))
        assert out.index("a = 1") < out.index("b = 2")
