"""Tests for the post-expansion undeclared-identifier lint."""

from repro import MacroProcessor
from repro.analysis import undeclared_identifiers
from repro.packages import enumio, exceptions
from tests.conftest import parse_c


class TestPlainC:
    def test_self_contained_function_is_clean(self):
        unit = parse_c(
            "int x;\nint f(int a) { int b; b = a + x; return b; }"
        )
        assert undeclared_identifiers(unit) == {}

    def test_missing_declaration_reported(self):
        unit = parse_c("int f(void) { return mystery; }")
        report = undeclared_identifiers(unit)
        assert report == {"f": {"mystery"}}

    def test_calls_to_unknown_functions_reported(self):
        unit = parse_c("int f(void) { return helper(1); }")
        assert "helper" in undeclared_identifiers(unit)["f"]

    def test_functions_see_each_other(self):
        unit = parse_c(
            "int g(void);\n"
            "int f(void) { return g(); }\n"
            "int g(void) { return f(); }"
        )
        assert undeclared_identifiers(unit) == {}

    def test_enum_constants_are_declared(self):
        unit = parse_c(
            "enum color {red, green};\n"
            "int f(void) { return red + green; }"
        )
        assert undeclared_identifiers(unit) == {}

    def test_externs_whitelist(self):
        unit = parse_c("void f(void) { printf(fmt); }")
        report = undeclared_identifiers(unit, externs={"printf", "fmt"})
        assert report == {}


class TestPackagesAreSelfContained:
    def test_myenum_output_needs_only_libc(self):
        mp = MacroProcessor()
        enumio.register(mp)
        unit = mp.expand_to_ast("myenum fruit {apple, banana};")
        report = undeclared_identifiers(
            unit, externs={"printf", "getline", "strcmp"}
        )
        assert report == {}

    def test_exceptions_output_needs_documented_support(self):
        mp = MacroProcessor()
        exceptions.register(mp)
        unit = mp.expand_to_ast(
            "int *exception_ptr;\n"
            "void f(void) { catch tag {h();} {throw tag;} }"
        )
        report = undeclared_identifiers(
            unit,
            externs={"setjmp", "longjmp", "error_handler", "tag", "h"},
        )
        assert report == {}

    def test_lint_catches_a_buggy_macro(self):
        # A macro whose template references a helper nobody declared.
        mp = MacroProcessor()
        mp.load(
            "syntax stmt leaky {| ( ) |}"
            "{ return(`{undeclared_helper();}); }"
        )
        unit = mp.expand_to_ast("void f(void) { leaky(); }")
        assert "undeclared_helper" in undeclared_identifiers(unit)["f"]
