"""Property-based tests over generated declarations and declarators.

The declarator grammar is where C round-tripping usually breaks
(pointer/array/function nesting and their parenthesization); these
strategies generate arbitrary well-formed declarators and check the
printer/parser agree.
"""

from hypothesis import given, settings, strategies as st

from repro.cast import ctypes, decls, nodes, render_c
from repro.parser.core import Parser
from tests.integration.test_property import identifiers


def _wrap_declarators(children):
    return st.one_of(
        children.map(
            lambda d: decls.PointerDeclarator(d, [])
        ),
        children.map(
            lambda d: decls.ArrayDeclarator(d, nodes.IntLit(4))
        ),
        children.map(lambda d: decls.ArrayDeclarator(d, None)),
        children.map(
            lambda d: decls.FuncDeclarator(
                d,
                [
                    decls.ParamDecl(
                        decls.DeclSpecs([], [], ctypes.PrimitiveType(["int"])),
                        decls.NameDeclarator("p"),
                    )
                ],
                [],
            )
        ),
    )


declarators = st.recursive(
    identifiers.map(decls.NameDeclarator),
    _wrap_declarators,
    max_leaves=6,
)

base_types = st.sampled_from(
    [["int"], ["char"], ["unsigned", "long"], ["float"], ["void"]]
).map(lambda names: ctypes.PrimitiveType(list(names)))


def _is_function_declarator(d) -> bool:
    # A top-level function declarator can't take an initializer and
    # arrays-of-functions etc. are not valid C; keep the generator
    # honest by filtering out nonsense shapes the C grammar forbids.
    current = d
    while isinstance(
        current, (decls.PointerDeclarator, decls.ArrayDeclarator)
    ):
        if isinstance(current, decls.ArrayDeclarator) and isinstance(
            current.inner, decls.FuncDeclarator
        ):
            return True
        current = current.inner
    return False


valid_declarators = declarators.filter(
    lambda d: not _is_function_declarator(d)
)


class TestDeclaratorRoundTrip:
    @given(base_types, valid_declarators)
    @settings(max_examples=150, deadline=None)
    def test_declaration_round_trips(self, base, declarator):
        declaration = decls.Declaration(
            decls.DeclSpecs([], [], base),
            [decls.InitDeclarator(declarator, None)],
        )
        printed = render_c(declaration)
        parser = Parser(printed)
        reparsed = parser.parse_declaration()
        assert reparsed == declaration, printed

    @given(st.lists(identifiers, min_size=1, max_size=5, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_multi_declarator_lists(self, names):
        declaration = decls.Declaration(
            decls.DeclSpecs([], [], ctypes.PrimitiveType(["int"])),
            [
                decls.InitDeclarator(decls.NameDeclarator(n), None)
                for n in names
            ],
        )
        printed = render_c(declaration)
        reparsed = Parser(printed).parse_declaration()
        assert reparsed == declaration


class TestEnumRoundTrip:
    @given(st.lists(identifiers, min_size=1, max_size=10, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_enums(self, names):
        declaration = decls.Declaration(
            decls.DeclSpecs(
                [], [],
                ctypes.EnumType(
                    "e", [ctypes.Enumerator(n) for n in names]
                ),
            ),
            [],
        )
        printed = render_c(declaration)
        reparsed = Parser(printed).parse_declaration()
        assert reparsed == declaration


class TestMyenumProperty:
    @given(st.lists(identifiers, min_size=1, max_size=10, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_myenum_output_tracks_input(self, names):
        from repro import MacroProcessor
        from repro.packages import enumio

        mp = MacroProcessor()
        enumio.register(mp)
        out = mp.expand_to_c(f"myenum et {{{', '.join(names)}}};")
        for name in names:
            assert f"case {name}:" in out
            assert f'"{name}"' in out
        assert out.count("case ") == len(names)
        assert out.count("strcmp") == len(names)
