"""Engine edge cases: define_macros, option interplay, session reuse."""

import pytest

from repro import MacroProcessor, Ms2Options
from repro.cast import decls


class TestDefineMacros:
    def test_returns_new_names(self, mp):
        names = mp.define_macros(
            "syntax stmt a {| ( ) |} { return(`{x();}); }\n"
            "syntax stmt b {| ( ) |} { return(`{y();}); }"
        )
        assert names == ["a", "b"]

    def test_only_new_names_reported(self, mp):
        mp.define_macros("syntax stmt a {| ( ) |} { return(`{x();}); }")
        names = mp.define_macros(
            "syntax stmt b {| ( ) |} { return(`{y();}); }"
        )
        assert names == ["b"]

    def test_names_in_definition_order_not_alphabetical(self, mp):
        names = mp.define_macros(
            "syntax stmt zebra {| ( ) |} { return(`{z();}); }\n"
            "syntax stmt alpha {| ( ) |} { return(`{a();}); }\n"
            "syntax stmt mid {| ( ) |} { return(`{m();}); }"
        )
        assert names == ["zebra", "alpha", "mid"]


class TestSessionReuse:
    def test_macros_persist_across_expand_calls(self, mp):
        mp.load("syntax exp one {| ( ) |} { return(`(1)); }")
        assert "1" in mp.expand_to_c("int a = one();")
        assert "1" in mp.expand_to_c("int b = one();")

    def test_meta_state_persists_across_expand_calls(self, mp):
        mp.load(
            "metadcl int n;\n"
            "syntax exp tick {| ( ) |}"
            "{ n = n + 1; return(make_num(n)); }"
        )
        assert "1" in mp.expand_to_c("int a = tick();")
        # Second file continues the same meta program.
        assert "2" in mp.expand_to_c("int b = tick();")

    def test_gensym_never_repeats_across_files(self, mp):
        mp.load(
            "syntax stmt g {| ( ) |}"
            "{ @id t = gensym(); return(`{{int $t = 0; use($t);}}); }"
        )
        first = mp.expand_to_c("void f(void) { g(); }")
        second = mp.expand_to_c("void h(void) { g(); }")
        import re

        names1 = set(re.findall(r"__g_\d+", first))
        names2 = set(re.findall(r"__g_\d+", second))
        assert not names1 & names2


class TestOptionInterplay:
    SOURCE = (
        "syntax stmt guard {| $$stmt::b |}"
        "{ return(`{{int saved = 0; $b; use(saved);}}); }"
    )
    PROGRAM = "void f(void) { guard w(); }"

    def test_hygienic_plus_compiled(self):
        mp = MacroProcessor(
            options=Ms2Options(hygienic=True, compiled_patterns=True)
        )
        mp.load(self.SOURCE)
        out = mp.expand_to_c(self.PROGRAM)
        assert "int saved" not in out

    def test_expand_program_vs_expand_to_ast(self, mp):
        mp.load(self.SOURCE)
        with_meta = mp.expand_program(self.PROGRAM)
        mp2 = MacroProcessor()
        without_meta = mp2.expand_to_ast(
            self.SOURCE + "\n" + self.PROGRAM
        )
        # expand_to_ast strips macro definitions from mixed files.
        assert not [
            i for i in without_meta.items
            if isinstance(i, decls.MacroDef)
        ]

    def test_expansion_count_accumulates(self, mp):
        mp.load(self.SOURCE)
        mp.expand_to_c(self.PROGRAM)
        mp.expand_to_c(self.PROGRAM)
        assert mp.expansion_count == 2
