"""Every code snippet in docs/TUTORIAL.md must actually work."""

from pathlib import Path

import pytest

from repro import MacroProcessor
from repro.packages import semantic

TUTORIAL = Path(__file__).parents[2] / "docs" / "TUTORIAL.md"


def test_tutorial_exists():
    assert TUTORIAL.exists()


class TestStep1:
    def test_painting(self, mp):
        out = mp.expand_to_c("""
syntax stmt Painting {| $$stmt::body |}
{
  return(`{BeginPaint(hDC, &ps);
           $body;
           EndPaint(hDC, &ps);});
}

void redraw(void) { Painting { draw(); } }
""")
        assert "BeginPaint" in out

    def test_definition_time_error(self, mp):
        from repro.errors import Ms2Error

        with pytest.raises(Ms2Error):
            mp.load(
                "syntax stmt Painting {| $$stmt::body |}"
                "{ return(`(1 + $body)); }"
            )


class TestStep2:
    def test_typed_swap(self, mp):
        out = mp.expand_to_c("""
syntax stmt swap {| ( $$type_spec::t , $$exp::a , $$exp::b ) |}
{
  @id tmp = gensym();
  return(`{{$t $tmp = $a;
            $a = $b;
            $b = $tmp;}});
}

void f(int x, int y) { swap(int, x, y); }
""")
        assert "int __" in out


class TestStep3:
    def test_myenum_print(self, mp):
        out = mp.expand_to_c("""
syntax decl myenum[] {| $$id::name { $$+/, id::ids } ; |}
{
  return(list(
    `[enum $name {$ids};],
    `[void $(symbolconc("print_", name))(int arg)
      {switch (arg)
         {$(map((@id id; `{case $id: printf("%s", $(pstring(id)));}),
                ids))}}]));
}
myenum fruit {apple, banana};
""")
        assert "print_fruit" in out
        assert "case apple:" in out


class TestStep4:
    def test_throw_conditional(self, mp):
        out = mp.expand_to_c("""
syntax stmt throw {| $$exp::value |}
{
  if (simple_expression(value))
    return(`{longjmp(exception_ptr, $value);});
  else
    return(`{{int the_value = $value;
              longjmp(exception_ptr, the_value);}});
}
void f(void) { throw tag; throw compute() + 1; }
""")
        assert out.count("longjmp") == 2
        assert out.count("the_value") == 2


class TestStep5:
    def test_defer_collect_emit(self, mp):
        out = mp.expand_to_c("""
metadcl @stmt pending[];

syntax decl defer[] {| $$stmt::s |}
{ pending = cons(s, pending); return(list()); }

syntax decl emit_deferred[] {| ( ) ; |}
{ return(list(`[void run_deferred(void) {$pending}])); }

defer close_log();
defer flush_cache();
emit_deferred();
""")
        assert "void run_deferred(void)" in out
        assert "close_log();" in out
        assert "flush_cache();" in out


class TestStep6:
    def test_for_range(self, mp):
        out = mp.expand_to_c("""
syntax stmt for_range
  {| $$id::v = $$exp::lo to $$exp::hi $$? step exp::s { $$*stmt::body } |}
{
  if (present(s))
    return(`{for ($v = $lo; $v <= $hi; $v = $v + $s) {$body}});
  return(`{for ($v = $lo; $v <= $hi; $v++) {$body}});
}
void f(void) { int i; for_range i = 0 to 9 step 2 { t(); } }
""")
        assert "i = i + 2" in out

    def test_semantic_sswap(self):
        mp = MacroProcessor()
        mp.load("""
syntax stmt sswap {| ( $$id::a , $$id::b ) |}
{
  @id tmp = gensym();
  @type_spec t = type_of(a);
  return(`{{$t $tmp = $a; $a = $b; $b = $tmp;}});
}
""")
        out = mp.expand_to_c("void f(long x, long y) { sswap(x, y); }")
        assert "long __" in out
