"""Tests for the shared error and location types."""

import pytest

from repro.errors import (
    SYNTHETIC,
    ExpansionError,
    LexError,
    MacroSyntaxError,
    MacroTypeError,
    MetaInterpError,
    Ms2Error,
    ParseError,
    PatternLookaheadError,
    SourceLocation,
)


class TestSourceLocation:
    def test_str_format(self):
        loc = SourceLocation(3, 7, 42, "prog.c")
        assert str(loc) == "prog.c:3:7"

    def test_defaults(self):
        loc = SourceLocation()
        assert loc.line == 1
        assert loc.filename == "<string>"

    def test_synthetic_sentinel(self):
        assert SYNTHETIC.offset == -1
        assert "synthetic" in SYNTHETIC.filename

    def test_frozen(self):
        with pytest.raises(Exception):
            SourceLocation().line = 9


class TestErrorFormatting:
    def test_message_with_location(self):
        err = ParseError("bad token", SourceLocation(2, 5, 10, "x.c"))
        assert str(err) == "x.c:2:5: bad token"

    def test_message_without_location(self):
        assert str(Ms2Error("standalone")) == "standalone"

    def test_attributes_preserved(self):
        loc = SourceLocation(1, 1, 0)
        err = MacroTypeError("oops", loc)
        assert err.message == "oops"
        assert err.location is loc


class TestHierarchy:
    def test_all_derive_from_ms2error(self):
        for cls in (LexError, ParseError, MacroSyntaxError,
                    PatternLookaheadError, MacroTypeError,
                    ExpansionError, MetaInterpError):
            assert issubclass(cls, Ms2Error)

    def test_lookahead_is_macro_syntax_error(self):
        assert issubclass(PatternLookaheadError, MacroSyntaxError)

    def test_macro_syntax_is_parse_error(self):
        assert issubclass(MacroSyntaxError, ParseError)

    def test_meta_interp_is_expansion_error(self):
        assert issubclass(MetaInterpError, ExpansionError)

    def test_one_except_clause_catches_everything(self):
        # Users can write `except Ms2Error` around the whole pipeline.
        from repro import MacroProcessor

        mp = MacroProcessor()
        for bad in (
            "int x = \x01;",                             # lex
            "int x = ;",                                  # parse
            "syntax stmt m {| |} { return(`{;}); }",      # macro syntax
            "syntax stmt m {| ( ) |} { return(1); }",     # macro type
        ):
            with pytest.raises(Ms2Error):
                MacroProcessor().expand_to_c(bad)
