"""The paper's *documented* limitations, reproduced faithfully.

Section 3 ("Dealing with Context Sensitivity") records three design
consequences of parsing fragments independent of their context:

1. macro-produced ``typedef``s do not influence later parses;
2. templates parse placeholder-free fragments with the typedef table
   as of *definition* time;
3. a macro cannot establish a parsing context (e.g. a local ``exit``
   keyword) for its arguments.

These tests pin the reproduced behaviour so it doesn't silently
drift into something the paper says the system does NOT do.
"""

import pytest

from repro import MacroProcessor
from repro.cast import nodes, stmts
from repro.errors import ParseError


class TestMacroProducedTypedefs:
    def test_expansion_typedef_not_visible_to_parser(self, mp):
        mp.load(
            "syntax decl maketype[] {| $$id::n ; |}"
            "{ return(list(`[typedef int $n;])); }"
        )
        # The expansion *contains* a typedef, but the parser's typedef
        # table doesn't learn it: 'handle * h' in the next function
        # parses as multiplication, exactly as the paper warns.
        unit = mp.expand_to_ast(
            "maketype handle;\n"
            "void f(int handle, int h) { handle * h; }"
        )
        body = unit.items[-1].body
        assert body.decls == []
        assert isinstance(body.stmts[0].expr, nodes.BinaryOp)

    def test_source_level_typedef_is_visible(self, mp):
        # By contrast, a typedef written directly in the source works.
        unit = mp.expand_to_ast(
            "typedef int handle;\n"
            "void f(void) { handle * h; }"
        )
        body = unit.items[-1].body
        assert len(body.decls) == 1


class TestNoParsingContextForArguments:
    def test_exit_macro_must_be_global(self, mp):
        # The paper's looping-macro example: 'exit' cannot be scoped
        # to the loop's arguments; it must be a global macro, and then
        # it works anywhere (including outside any loop).
        mp.load(
            "syntax stmt exit {| ( ) |} { return(`{goto loop_exit;}); }\n"
            "syntax stmt loop {| $$stmt::body |}"
            "{ return(`{{while (1) $body; loop_exit: ;}}); }"
        )
        out = mp.expand_to_c(
            "void f(void) { loop { if (done()) exit(); } }"
        )
        assert "goto loop_exit;" in out
        # ...and, per the limitation, it also expands outside a loop:
        out = mp.expand_to_c("void g(void) { exit(); }")
        assert "goto loop_exit;" in out


class TestFragmentsParseContextFree:
    def test_invocation_actuals_parse_without_invoker_context(self, mp):
        # The actual arguments are parsed "with no knowledge of the
        # invoking macro, other than its template": an actual that
        # would only make sense in some special context is parsed as
        # plain C.
        mp.load(
            "syntax stmt wrap {| $$stmt::body |} { return(`{{$body}}); }"
        )
        unit = mp.expand_to_ast("void f(void) { wrap { x * y; } }")
        inner = unit.items[0].body.stmts[0].stmts[0]
        # x * y parsed as an expression (no typedef for x in scope).
        assert isinstance(inner.stmts[0].expr, nodes.BinaryOp)


class TestInvocationPositions:
    def test_only_decl_stmt_exp_positions(self, mp):
        # "Our system, however, currently only allows macro
        # invocations where either declarations, statements, or
        # expressions are expected."  A type_spec-returning macro is
        # not invocable (there is no position for it).
        from repro.errors import MacroTypeError, MacroSyntaxError

        mp.load(
            "syntax type_spec inttype {| ( ) |}"
            "{ return(`{| type_spec :: int |}); }"
        )
        # The definition itself is accepted; but uses at type position
        # are not recognized — 'inttype() x;' is a parse error.
        with pytest.raises(ParseError):
            mp.expand_to_c("void f(void) { inttype() x; }")
