"""CLI surface of the telemetry subsystem: ``repro trace --events``
and the ``repro top`` / ``repro serve`` flag plumbing."""

import json

import pytest

from repro.cli import build_arg_parser, main


@pytest.fixture()
def event_log(tmp_path):
    """A canned daemon event log: two requests, one traced."""
    path = tmp_path / "events.jsonl"
    records = [
        {"ts": 1.0, "event": "request", "request_id": "a" * 16,
         "op": "ping", "id": 1},
        {"ts": 1.1, "event": "response", "request_id": "a" * 16,
         "op": "ping", "status": "ok", "ms": 0.2},
        {"ts": 2.0, "event": "request", "request_id": "b" * 16,
         "op": "trace", "id": 2},
        {"ts": 2.1, "event": "span", "request_id": "b" * 16,
         "macro": "Twice", "ms": 1.5},
        {"ts": 2.2, "event": "response", "request_id": "b" * 16,
         "op": "trace", "status": "ok", "ms": 3.0},
    ]
    path.write_text(
        "".join(json.dumps(r) + "\n" for r in records)
    )
    return path


class TestTraceEvents:
    def test_prints_all_records(self, event_log, capsys):
        assert main(["trace", "--events", str(event_log)]) == 0
        out = capsys.readouterr().out
        assert out.count("request") >= 2
        assert "macro=Twice" in out

    def test_request_id_filter(self, event_log, capsys):
        assert main(
            ["trace", "--events", str(event_log),
             "--request-id", "b" * 16]
        ) == 0
        out = capsys.readouterr().out
        assert "a" * 16 not in out
        assert out.count("b" * 16) == 3
        assert "span" in out

    def test_unknown_request_id_fails(self, event_log, capsys):
        assert main(
            ["trace", "--events", str(event_log),
             "--request-id", "f" * 16]
        ) == 1
        assert "no records" in capsys.readouterr().err

    def test_garbage_lines_are_skipped(self, event_log, capsys):
        with event_log.open("a") as stream:
            stream.write("not json\n")
        assert main(["trace", "--events", str(event_log)]) == 0
        assert "skipped" in capsys.readouterr().err

    def test_trace_without_files_or_events_exits(self):
        with pytest.raises(SystemExit):
            main(["trace"])


class TestArgSurface:
    def test_serve_accepts_telemetry_flags(self):
        args = build_arg_parser().parse_args(
            ["serve", "--port", "0", "--metrics-port", "0",
             "--metrics-host", "0.0.0.0",
             "--event-log", "/tmp/e.jsonl"]
        )
        assert args.metrics_port == 0
        assert args.metrics_host == "0.0.0.0"
        assert str(args.event_log) == "/tmp/e.jsonl"

    def test_serve_telemetry_defaults_off(self):
        args = build_arg_parser().parse_args(["serve", "--port", "0"])
        assert args.metrics_port is None
        assert args.event_log is None

    def test_top_subcommand_parses(self):
        args = build_arg_parser().parse_args(
            ["top", ":9000", "--interval", "0.5", "--iterations", "3"]
        )
        assert args.command == "top"
        assert args.address == ":9000"
        assert args.interval == 0.5
        assert args.iterations == 3
