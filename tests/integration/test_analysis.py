"""Tests for scope analysis: free variables and capture detection."""

from repro import MacroProcessor, Ms2Options
from repro.analysis import (
    Capture,
    bound_names,
    detect_captures,
    free_identifiers,
)
from tests.conftest import parse_c, parse_expr, parse_stmt


class TestBoundNames:
    def test_declaration(self):
        unit = parse_c("int x, *y;")
        assert bound_names(unit.items[0]) == ["x", "y"]

    def test_compound(self):
        s = parse_stmt("{int a; char b; a = 1;}")
        assert bound_names(s) == ["a", "b"]


class TestFreeIdentifiers:
    def test_expression(self):
        assert free_identifiers(parse_expr("a + b * f(c)")) == {
            "a", "b", "f", "c",
        }

    def test_locals_not_free(self):
        s = parse_stmt("{int a; a = b;}")
        assert free_identifiers(s) == {"b"}

    def test_member_names_not_variables(self):
        assert free_identifiers(parse_expr("p->next")) == {"p"}
        assert free_identifiers(parse_expr("s.field")) == {"s"}

    def test_function_params_bound(self):
        unit = parse_c("int f(int a, int b) {return a + b + g;}")
        assert free_identifiers(unit.items[0]) == {"g"}

    def test_kr_params_bound(self):
        unit = parse_c("int f(a, b)\nint a, b;\n{return a + b + c;}")
        assert free_identifiers(unit.items[0]) == {"c"}

    def test_nested_scopes(self):
        s = parse_stmt("{int a; {int b; use(a, b, c);}}")
        assert free_identifiers(s) == {"use", "c"}

    def test_initializer_sees_outer_scope(self):
        s = parse_stmt("{int a = init_value; use(a);}")
        assert "init_value" in free_identifiers(s)


CAPTURING_MACRO = """
syntax stmt save {| $$stmt::body |}
{
  return(`{{int saved = level;
            $body;
            level = saved;}});
}
"""


class TestCaptureDetection:
    def test_clean_program_has_no_captures(self):
        mp = MacroProcessor()
        mp.load(CAPTURING_MACRO)
        unit = mp.expand_to_ast("void f(void) { save { work(); } }")
        assert detect_captures(unit) == []

    def test_capture_detected(self):
        mp = MacroProcessor()
        mp.load(CAPTURING_MACRO)
        # User body uses its own 'saved' — bound by the template's decl.
        unit = mp.expand_to_ast(
            "void f(int saved) { save { saved = saved + 1; } }"
        )
        captures = detect_captures(unit)
        assert len(captures) == 2  # both user references to 'saved'
        assert all(c.name == "saved" for c in captures)

    def test_hygienic_mode_eliminates_captures(self):
        mp = MacroProcessor(options=Ms2Options(hygienic=True))
        mp.load(CAPTURING_MACRO)
        unit = mp.expand_to_ast(
            "void f(int saved) { save { saved = saved + 1; } }"
        )
        assert detect_captures(unit) == []

    def test_template_own_references_not_captures(self):
        # The template's own uses of 'saved' are marked, so they are
        # intentional bindings, not captures.
        mp = MacroProcessor()
        mp.load(CAPTURING_MACRO)
        unit = mp.expand_to_ast("void f(void) { save { x(); } }")
        assert detect_captures(unit) == []

    def test_capture_report_is_readable(self):
        mp = MacroProcessor()
        mp.load(CAPTURING_MACRO)
        unit = mp.expand_to_ast(
            "void f(int saved) { save { g(saved); } }"
        )
        (capture,) = detect_captures(unit)
        text = str(capture)
        assert "saved" in text
        assert "captured" in text

    def test_gensym_macros_never_capture(self):
        mp = MacroProcessor()
        mp.load(
            "syntax stmt save {| $$stmt::body |}"
            "{ @id slot = gensym();"
            "  return(`{{int $slot = level; $body; level = $slot;}}); }"
        )
        unit = mp.expand_to_ast(
            "void f(int saved) { save { g(saved); } }"
        )
        assert detect_captures(unit) == []
