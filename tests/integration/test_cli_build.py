"""The ``repro build`` subcommand, end to end through ``main()``."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

from tests.driver.corpus import (
    PROGRAM_BROKEN,
    PROGRAM_PLAIN,
    PROGRAM_PRIVATE_MACRO,
    PROGRAM_USES_SHARED,
    SHARED_MACROS,
)


@pytest.fixture()
def workspace(tmp_path: Path) -> dict[str, Path]:
    src = tmp_path / "src"
    src.mkdir()
    (src / "a_shared.c").write_text(PROGRAM_USES_SHARED)
    (src / "b_private.ms2").write_text(PROGRAM_PRIVATE_MACRO)
    (src / "c_plain.c").write_text(PROGRAM_PLAIN)
    shared = tmp_path / "shared.ms2"
    shared.write_text(SHARED_MACROS)
    return {
        "src": src,
        "shared": shared,
        "cache": tmp_path / "cache",
        "out": tmp_path / "out",
    }


def build_argv(ws: dict[str, Path], *extra: str) -> list[str]:
    return [
        "build", str(ws["src"]),
        "--package-file", str(ws["shared"]),
        "--cache-dir", str(ws["cache"]),
        *extra,
    ]


def test_cold_then_warm(workspace, capsys) -> None:
    assert main(build_argv(workspace)) == 0
    cold = capsys.readouterr().out
    assert "built" in cold and "3 file" in cold

    assert main(build_argv(workspace)) == 0
    warm = capsys.readouterr().out
    assert "cached" in warm


def test_json_report(workspace, capsys) -> None:
    assert main(build_argv(workspace, "--report", "json")) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cold["ok"] is True
    assert cold["files"] == 3
    assert cold["files_from_cache"] == 0
    assert len(cold["results"]) == 3
    assert all(r["status"] == "ok" for r in cold["results"])

    assert main(build_argv(workspace, "--report", "json")) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["files_from_cache"] == 3
    assert warm["cache"]["hits"] == 3
    assert [r["path"] for r in warm["results"]] == [
        r["path"] for r in cold["results"]
    ]


def test_out_dir_writes_expanded_c(workspace, capsys) -> None:
    assert main(
        build_argv(workspace, "-o", str(workspace["out"]))
    ) == 0
    capsys.readouterr()
    written = sorted(p.name for p in workspace["out"].iterdir())
    assert written == ["a_shared.c", "b_private.c", "c_plain.c"]
    text = (workspace["out"] / "a_shared.c").read_text()
    assert "step" in text and "Twice" not in text


def test_parallel_jobs_flag(workspace, capsys) -> None:
    assert main(build_argv(workspace, "-j", "2")) == 0
    capsys.readouterr()


def test_failure_exit_code_and_stderr(workspace, capsys) -> None:
    (workspace["src"] / "d_broken.c").write_text(PROGRAM_BROKEN)
    assert main(build_argv(workspace)) == 1
    captured = capsys.readouterr()
    assert "d_broken.c" in captured.err
    assert "error" in captured.err


def test_no_disk_cache_flag(workspace, capsys) -> None:
    assert main(build_argv(workspace, "--no-disk-cache")) == 0
    capsys.readouterr()
    assert not workspace["cache"].exists()


def test_no_incremental_json_counts(workspace, capsys) -> None:
    assert main(build_argv(workspace)) == 0
    capsys.readouterr()
    assert main(
        build_argv(workspace, "--no-incremental", "--report", "json")
    ) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["files_from_cache"] == 0
    assert report["files"] == 3
