"""Property-based tests (hypothesis) on core invariants.

* printer/parser round trip: ``parse(print(t)) == t`` for generated
  expression and statement trees;
* scanner totality over identifier/number soup;
* C division/modulo identities;
* list-operation semantics in the meta-interpreter;
* macro list parameters of arbitrary length;
* token-macro interference for arbitrary operands (the paper's
  introduction, generalized).
"""

from hypothesis import given, settings, strategies as st

from repro import MacroProcessor
from repro.baseline.tokmacro import TokenMacroProcessor, render_tokens
from repro.cast import nodes, render_c
from repro.lexer.scanner import tokenize
from repro.meta.interp import _c_div, _c_mod
from tests.conftest import parse_expr

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s not in {
        "auto", "break", "case", "char", "const", "continue", "default",
        "do", "double", "else", "enum", "extern", "float", "for", "goto",
        "if", "int", "long", "register", "return", "short", "signed",
        "sizeof", "static", "struct", "switch", "typedef", "union",
        "unsigned", "void", "volatile", "while", "syntax", "metadcl",
    }
)

_leaf_exprs = st.one_of(
    identifiers.map(nodes.Identifier),
    st.integers(min_value=0, max_value=10**6).map(nodes.IntLit),
)

_binary_ops = st.sampled_from(sorted(nodes.BINARY_OPS))
_unary_ops = st.sampled_from(["-", "+", "!", "~", "*", "&"])


def _compound_exprs(children):
    return st.one_of(
        st.tuples(_binary_ops, children, children).map(
            lambda t: nodes.BinaryOp(t[0], t[1], t[2])
        ),
        st.tuples(_unary_ops, children).map(
            lambda t: nodes.UnaryOp(t[0], t[1])
        ),
        st.tuples(children, children, children).map(
            lambda t: nodes.ConditionalOp(t[0], t[1], t[2])
        ),
        st.tuples(identifiers, st.lists(children, max_size=3)).map(
            lambda t: nodes.Call(nodes.Identifier(t[0]), t[1])
        ),
        st.tuples(children, children).map(
            lambda t: nodes.Index(t[0], t[1])
        ),
        st.tuples(children, identifiers).map(
            lambda t: nodes.Member(t[0], t[1])
        ),
    )


expressions = st.recursive(_leaf_exprs, _compound_exprs, max_leaves=24)


# ---------------------------------------------------------------------------
# Round-trip properties
# ---------------------------------------------------------------------------


class TestPrinterParserRoundTrip:
    @given(expressions)
    @settings(max_examples=200, deadline=None)
    def test_expression_round_trip(self, tree):
        printed = render_c(tree)
        reparsed = parse_expr(printed)
        assert reparsed == tree, printed

    @given(st.lists(expressions, min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_statement_list_round_trip(self, exprs):
        from repro.cast import stmts
        from tests.conftest import parse_stmt

        tree = stmts.CompoundStmt(
            [], [stmts.ExprStmt(e) for e in exprs]
        )
        printed = render_c(tree)
        assert parse_stmt(printed) == tree


class TestScannerProperties:
    @given(st.lists(identifiers, min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_identifier_soup_round_trips(self, names):
        source = " ".join(names)
        tokens = tokenize(source)[:-1]
        assert [t.text for t in tokens] == names

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=100, deadline=None)
    def test_int_literals_decode(self, n):
        token = tokenize(str(n))[0]
        assert token.value == n

    @given(st.text(
        alphabet=st.characters(
            codec="ascii", exclude_characters='"\\\n'
        ),
        max_size=30,
    ))
    @settings(max_examples=100, deadline=None)
    def test_string_literals_decode(self, s):
        token = tokenize(f'"{s}"')[0]
        assert token.value == s


class TestCArithmetic:
    @given(
        st.integers(min_value=-10**9, max_value=10**9),
        st.integers(min_value=-10**9, max_value=10**9).filter(bool),
    )
    @settings(max_examples=200, deadline=None)
    def test_div_mod_identity(self, a, b):
        assert _c_div(a, b) * b + _c_mod(a, b) == a

    @given(
        st.integers(min_value=-10**9, max_value=10**9),
        st.integers(min_value=-10**9, max_value=10**9).filter(bool),
    )
    @settings(max_examples=200, deadline=None)
    def test_mod_sign_follows_dividend(self, a, b):
        m = _c_mod(a, b)
        assert abs(m) < abs(b)
        if m != 0:
            assert (m > 0) == (a > 0)

    @given(st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=50, deadline=None)
    def test_truncation_toward_zero(self, a):
        assert _c_div(-a, 3) == -(a // 3)


class TestMacroListParameters:
    @given(st.lists(identifiers, min_size=1, max_size=15, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_separated_list_length_preserved(self, names):
        mp = MacroProcessor()
        mp.load(
            "syntax stmt gather {| { $$+/, id::ids } |}"
            "{ return(`{f($ids);}); }"
        )
        program = "void g(void) { gather {%s}; }" % ", ".join(names)
        unit = mp.expand_to_ast(program)
        call = unit.items[0].body.stmts[0].expr
        assert [a.name for a in call.args] == names

    @given(st.integers(min_value=0, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_star_statement_list(self, n):
        mp = MacroProcessor()
        mp.load(
            "syntax stmt block {| { $$*stmt::body } |}"
            "{ return(`{{$body}}); }"
        )
        stmts_src = " ".join(f"s{i}();" for i in range(n))
        unit = mp.expand_to_ast(f"void g(void) {{ block {{{stmts_src}}} }}")
        inner = unit.items[0].body.stmts[0]
        assert len(inner.stmts) == n


class TestInterferenceGeneralized:
    @given(
        st.lists(identifiers, min_size=2, max_size=4),
        st.lists(identifiers, min_size=2, max_size=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_syntax_macros_never_interfere(self, left_ids, right_ids):
        a = " + ".join(left_ids)
        b = " + ".join(right_ids)
        mp = MacroProcessor()
        mp.load(
            "syntax exp M {| ( $$exp::a , $$exp::b ) |}"
            "{ return(`($a * $b)); }"
        )
        unit = mp.expand_to_ast(f"void f(void) {{ r = M({a}, {b}); }}")
        value = unit.items[0].body.stmts[0].expr.value
        assert value.op == "*"
        assert value.left == parse_expr(a)
        assert value.right == parse_expr(b)

    @given(
        st.lists(identifiers, min_size=2, max_size=4),
        st.lists(identifiers, min_size=2, max_size=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_token_macros_always_interfere(self, left_ids, right_ids):
        a = " + ".join(left_ids)
        b = " + ".join(right_ids)
        tp = TokenMacroProcessor()
        tp.define("M(A, B) A * B")
        out = render_tokens(tp.expand_text(f"M({a}, {b})"))
        tree = parse_expr(out)
        # With multi-term operands the top node is ALWAYS + (wrong).
        assert tree.op == "+"


class TestGensym:
    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_gensym_never_collides(self, n):
        from repro.meta.interp import Interpreter

        interp = Interpreter()
        names = [interp.gensym().name for _ in range(n)]
        assert len(set(names)) == n
