"""to_json()/from_json() round trips — the server wire format.

Every payload that crosses the daemon's NDJSON protocol (or lands in
a persistent snapshot) round-trips through its ``to_json`` /
``from_json`` pair: :class:`Ms2Options`, :class:`Diagnostic`,
:class:`PipelineStats`, :class:`ExpansionSpan` and the composite
:class:`ExpandResult`.  The properties pin two contracts:

- **object fidelity** where the object is fully wire-representable
  (``Ms2Options``: equality after a round trip);
- **JSON stability** where serialization deliberately flattens
  run-time state (locations, span trees, phase timings): a second
  round trip must produce byte-identical JSON.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MacroProcessor, Ms2Options
from repro.diagnostics import Diagnostic
from repro.errors import SourceLocation
from repro.options import ExpandResult
from repro.stats import PipelineStats
from repro.trace import ExpansionSpan

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_options = st.builds(
    Ms2Options,
    hygienic=st.booleans(),
    keep_meta=st.booleans(),
    annotate=st.booleans(),
    compiled_patterns=st.booleans(),
    cache=st.booleans(),
    recover=st.booleans(),
    max_errors=st.integers(min_value=1, max_value=500),
    max_expansions=st.none() | st.integers(min_value=0, max_value=10**6),
    max_output_nodes=st.none() | st.integers(min_value=0, max_value=10**6),
    deadline_s=st.none()
    | st.floats(min_value=0.0, max_value=3600.0, allow_nan=False),
    trace=st.booleans(),
    profile=st.booleans(),
)

_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=60
)

_location = st.builds(
    SourceLocation,
    line=st.integers(min_value=1, max_value=10**6),
    column=st.integers(min_value=1, max_value=10**4),
    filename=st.text(min_size=1, max_size=30).filter(
        lambda s: "\n" not in s
    ),
)

_diagnostic = st.builds(
    Diagnostic,
    severity=st.sampled_from(["error", "warning", "note"]),
    message=_text,
    location=st.none() | _location,
    category=st.sampled_from(["", "ParseError", "ExpansionError"]),
)

_stats = st.builds(
    PipelineStats,
    cache_hits=st.integers(min_value=0, max_value=10**6),
    cache_misses=st.integers(min_value=0, max_value=10**6),
    expansions=st.integers(min_value=0, max_value=10**6),
    hygiene_renames=st.integers(min_value=0, max_value=10**6),
    phase_seconds=st.dictionaries(
        st.sampled_from(["scan", "dispatch", "meta-eval", "print"]),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        max_size=4,
    ),
)


def _wire(payload: dict) -> dict:
    """One trip through actual JSON text, as the protocol does."""
    return json.loads(json.dumps(payload))


# ---------------------------------------------------------------------------
# Ms2Options: full object fidelity
# ---------------------------------------------------------------------------


@given(_options)
@settings(max_examples=100)
def test_options_round_trip_is_identity(options: Ms2Options) -> None:
    assert Ms2Options.from_json(_wire(options.to_json())) == options


@given(_options)
@settings(max_examples=50)
def test_options_round_trip_preserves_hash(options: Ms2Options) -> None:
    restored = Ms2Options.from_json(_wire(options.to_json()))
    assert restored.options_hash() == options.options_hash()


def test_options_from_json_ignores_unknown_keys() -> None:
    payload = {"hygienic": True, "from_the_future": 42}
    assert Ms2Options.from_json(payload) == Ms2Options(hygienic=True)


def test_options_from_json_rejects_wrong_types() -> None:
    import pytest

    for bad in (
        {"hygienic": "yes"},
        {"max_errors": "many"},
        {"max_errors": True},
        {"max_expansions": 1.5},
        {"deadline_s": "soon"},
        "not an object",
    ):
        with pytest.raises(ValueError):
            Ms2Options.from_json(bad)  # type: ignore[arg-type]


def test_options_from_json_none_is_defaults() -> None:
    assert Ms2Options.from_json(None) == Ms2Options()


def test_options_runtime_hooks_never_serialize() -> None:
    noisy = Ms2Options(trace_hooks=(lambda event, span: None,))
    payload = noisy.to_json()
    assert "trace_hooks" not in payload
    assert "trace_jsonl" not in payload
    json.dumps(payload)  # JSON-able by construction


# ---------------------------------------------------------------------------
# Diagnostic / PipelineStats / ExpansionSpan: JSON stability
# ---------------------------------------------------------------------------


@given(_diagnostic)
@settings(max_examples=100)
def test_diagnostic_round_trip_is_json_stable(diag: Diagnostic) -> None:
    once = _wire(diag.to_json())
    again = Diagnostic.from_json(once).to_json()
    assert again == once


def test_diagnostic_location_parses_back() -> None:
    diag = Diagnostic(
        "error", "boom", SourceLocation(3, 7, 42, "dir/prog.c")
    )
    restored = Diagnostic.from_json(diag.to_json())
    assert restored.location is not None
    assert restored.location.filename == "dir/prog.c"
    assert restored.location.line == 3
    assert restored.location.column == 7


def test_diagnostic_location_with_colons_in_filename() -> None:
    diag = Diagnostic("error", "x", SourceLocation(2, 4, 0, "C:\\a:b.c"))
    restored = Diagnostic.from_json(diag.to_json())
    assert restored.location.filename == "C:\\a:b.c"
    assert (restored.location.line, restored.location.column) == (2, 4)


@given(_stats)
@settings(max_examples=100)
def test_stats_round_trip_is_json_stable(stats: PipelineStats) -> None:
    once = _wire(stats.to_json())
    again = PipelineStats.from_json(once).to_json()
    assert again == once


def test_span_round_trip_is_json_stable() -> None:
    span = ExpansionSpan(
        span_id=3,
        parent_id=1,
        macro="unroll",
        pattern="( $count ) $$stmt::body",
        site="prog.c:4:5",
        arg_types=("IntConst", "Compound"),
        parse_mode="compiled",
        depth=1,
        start=123.0,
        cache="hit",
        duration=0.00123,
        output_nodes=17,
    )
    once = span.to_json()
    again = ExpansionSpan.from_json(_wire(once)).to_json()
    assert again == once


# ---------------------------------------------------------------------------
# ExpandResult: the composite payload, from a real pipeline run
# ---------------------------------------------------------------------------

_PROGRAM = """
syntax exp twice {| ( $$exp::e ) |} { return(`(($e) * 2)); }
syntax exp quad {| ( $$exp::e ) |} { return(`(twice(twice($e)))); }
int x = quad(1);
"""

_BROKEN = "void broken( {\nint x = ;\n"


def test_expand_result_round_trip_clean_traced() -> None:
    mp = MacroProcessor(options=Ms2Options(trace=True, profile=True))
    result = mp.expand(_PROGRAM, "prog.c")
    once = _wire(result.to_json())
    restored = ExpandResult.from_json(once)
    assert restored.output == result.output
    assert restored.ok is result.ok
    assert restored.to_json() == once
    # The span *tree* survives: nested Twice under top-level Twice.
    assert restored.spans and restored.spans[0].children


def test_expand_result_round_trip_with_diagnostics() -> None:
    mp = MacroProcessor(options=Ms2Options(recover=True))
    result = mp.expand(_BROKEN, "broken.c")
    assert not result.ok
    once = _wire(result.to_json())
    restored = ExpandResult.from_json(once)
    assert not restored.ok
    assert [d.to_json() for d in restored.diagnostics] == once[
        "diagnostics"
    ]
    assert restored.to_json() == once


def test_expand_result_spans_serialize_whole_tree() -> None:
    """to_json flattens every span pre-order (not just the roots),
    so nested expansions survive the wire."""
    mp = MacroProcessor(options=Ms2Options(trace=True))
    result = mp.expand(_PROGRAM, "prog.c")
    payload = result.to_json()
    ids = {record["id"] for record in payload["spans"]}
    parents = {
        record["parent"]
        for record in payload["spans"]
        if record["parent"] is not None
    }
    assert parents and parents <= ids, "child spans reference parents"
    assert len(payload["spans"]) > len(result.spans)
