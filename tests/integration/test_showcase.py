"""A full-system showcase: every package in one program.

This is the closest thing to the paper's vision of the macro system
as "a portable mechanism for extending the compiler itself": exception
handling, resource bracketing, new control flow, generated IO code and
a portability VM, all combined — and the output is *plain C* that our
own parser accepts with no macro table at all.
"""

from repro import MacroProcessor, Ms2Options
from repro.cast import decls
from repro.cast.base import walk
from repro.packages import load_standard, portvm
from repro.parser.core import Parser

PROGRAM = """
myenum status {ok, failed, retrying};

serializable record { int id; int status_code; };

int process(int handle)
{
    int i;
    int result;
    result = ok;
    catch failed
        {result = read_status();}
        {
            Painting {
                for_range i = 0 to 9 step 3 {
                    unless (valid(i)) { throw failed; }
                    vm_sleep(i * 10);
                    draw_row(i);
                }
            }
        }
    unwind_protect
        { dynamic_bind {int verbosity = 0} { finish(handle); } }
        { vm_close(handle); }
    print_status(result);
    return(result);
}
"""


def build() -> MacroProcessor:
    mp = MacroProcessor()
    load_standard(mp)
    portvm.register(mp)
    return mp


class TestShowcase:
    def test_expands_without_error(self):
        mp = build()
        out = mp.expand_to_c(PROGRAM)
        assert out

    def test_output_is_plain_c(self):
        mp = build()
        out = mp.expand_to_c(PROGRAM)
        # Re-parse with a macro-less parser: everything must be C.
        unit = Parser(out).parse_program()
        assert unit.items

    def test_no_meta_artifacts_survive(self):
        mp = build()
        out = mp.expand_to_c(PROGRAM)
        for token in ("syntax", "metadcl", "$", "`", "{|"):
            assert token not in out, token

    def test_no_unexpanded_invocations(self):
        from repro.cast import nodes

        mp = build()
        unit = mp.expand_to_ast(PROGRAM)
        assert not [
            n for n in walk(unit)
            if isinstance(n, nodes.MacroInvocation)
        ]

    def test_every_package_contributed(self):
        mp = build()
        out = mp.expand_to_c(PROGRAM)
        assert "print_status" in out          # myenum
        assert "print_record" in out          # serializable
        assert "setjmp" in out                # catch/unwind_protect
        assert "BeginPaint" in out            # Painting
        assert "for (i = 0; i <= 9; i = i + 3)" in out  # for_range
        assert "usleep" in out                # vm_sleep (unix default)
        assert "longjmp" in out               # throw

    def test_expansion_count_substantial(self):
        mp = build()
        mp.expand_to_c(PROGRAM)
        assert mp.expansion_count >= 10

    def test_hygienic_variant_also_clean(self):
        mp = MacroProcessor(options=Ms2Options(hygienic=True))
        load_standard(mp)
        portvm.register(mp)
        out = mp.expand_to_c(PROGRAM)
        unit = Parser(out).parse_program()
        assert unit.items

    def test_compiled_patterns_identical_output(self):
        plain = build().expand_to_c(PROGRAM)
        mp = MacroProcessor(options=Ms2Options(compiled_patterns=True))
        load_standard(mp)
        portvm.register(mp)
        assert mp.expand_to_c(PROGRAM) == plain


class TestTemplateEmbeddedExpressionMacros:
    def test_exp_macro_inside_template(self, mp):
        mp.load(
            "syntax exp twice {| ( $$exp::e ) |} { return(`(2 * ($e))); }\n"
            "syntax stmt scaled {| $$exp::v |}"
            "{ return(`{out = twice($v);}); }"
        )
        out = mp.expand_to_c("void f(void) { scaled base + 1; }")
        assert "out = 2 * (base + 1);" in out
