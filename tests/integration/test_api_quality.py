"""API-quality gates: docstrings on every public item, clean imports.

The deliverable requires "doc comments on every public item"; this
test enforces it mechanically so it stays true.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.analysis",
    "repro.api",
    "repro.asttypes",
    "repro.asttypes.body",
    "repro.asttypes.check",
    "repro.asttypes.convert",
    "repro.asttypes.env",
    "repro.asttypes.types",
    "repro.baseline",
    "repro.baseline.charmacro",
    "repro.baseline.tokmacro",
    "repro.cast",
    "repro.cast.base",
    "repro.cast.builders",
    "repro.cast.ctypes",
    "repro.cast.decls",
    "repro.cast.nodes",
    "repro.cast.printer",
    "repro.cast.sexpr",
    "repro.cast.stmts",
    "repro.cast.struct_hash",
    "repro.cast.visitor",
    "repro.cli",
    "repro.client",
    "repro.constfold",
    "repro.diagnostics",
    "repro.driver",
    "repro.driver.cachebackend",
    "repro.driver.cacheconfig",
    "repro.driver.diskcache",
    "repro.driver.locks",
    "repro.driver.report",
    "repro.driver.scheduler",
    "repro.engine",
    "repro.errors",
    "repro.faults",
    "repro.figures",
    "repro.lexer",
    "repro.lexer.scanner",
    "repro.lexer.tokens",
    "repro.macros",
    "repro.macros.cache",
    "repro.macros.codegen",
    "repro.macros.compiled",
    "repro.macros.definition",
    "repro.macros.expander",
    "repro.macros.hygiene",
    "repro.macros.invocation",
    "repro.macros.lookahead",
    "repro.macros.pattern",
    "repro.macros.template",
    "repro.meta",
    "repro.meta.builtins",
    "repro.meta.frames",
    "repro.meta.interp",
    "repro.meta.values",
    "repro.metrics_http",
    "repro.options",
    "repro.packages",
    "repro.parser",
    "repro.parser.core",
    "repro.parser.exprs",
    "repro.parser.stream",
    "repro.provenance",
    "repro.semantics",
    "repro.serveconfig",
    "repro.server",
    "repro.shard",
    "repro.stats",
    "repro.telemetry",
    "repro.top",
    "repro.trace",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_importable_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_public_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    undocumented = []
    for attr_name in dir(module):
        if attr_name.startswith("_"):
            continue
        obj = getattr(module, attr_name)
        if getattr(obj, "__module__", None) != name:
            continue  # re-exported from elsewhere
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(attr_name)
    assert not undocumented, (
        f"{name}: missing docstrings on {', '.join(undocumented)}"
    )


def test_every_package_module_is_listed():
    """PUBLIC_MODULES covers the real tree (catch new, unlisted files)."""
    found = {"repro"}
    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if module_info.name.endswith("__main__"):
            continue
        if module_info.name.startswith("repro.packages."):
            continue  # macro suites are data-carrying modules
        found.add(module_info.name)
    missing = found - set(PUBLIC_MODULES)
    assert not missing, f"unlisted public modules: {sorted(missing)}"


def test_packages_have_source_and_register():
    from repro.packages import ALL_PACKAGES

    for pkg in ALL_PACKAGES:
        assert hasattr(pkg, "SOURCE")
        assert callable(pkg.register)
        assert pkg.__doc__
