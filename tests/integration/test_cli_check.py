"""Tests for the ``repro check`` lint subcommand."""

import pytest

from repro.cli import main


class TestCheck:
    def test_clean_program(self, tmp_path, capsys):
        prog = tmp_path / "p.c"
        prog.write_text(
            "int x;\nint f(int a) { return a + x; }\n"
        )
        assert main(["check", str(prog)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_undeclared_identifier_flagged(self, tmp_path, capsys):
        prog = tmp_path / "p.c"
        prog.write_text("int f(void) { return mystery; }\n")
        assert main(["check", str(prog)]) == 1
        err = capsys.readouterr().err
        assert "mystery" in err
        assert "f()" in err

    def test_extern_whitelist(self, tmp_path, capsys):
        prog = tmp_path / "p.c"
        prog.write_text('void f(void) { printf(msg); }\n')
        assert main(
            ["check", "--extern", "printf", "--extern", "msg", str(prog)]
        ) == 0

    def test_capture_flagged(self, tmp_path, capsys):
        prog = tmp_path / "p.c"
        prog.write_text(
            "syntax stmt save {| $$stmt::b |}"
            "{ return(`{{int saved = level; $b; level = saved;}}); }\n"
            "int level;\n"
            "void f(int saved) { save { saved = saved + 1; } }\n"
        )
        assert main(["check", str(prog)]) == 1
        assert "capture" in capsys.readouterr().err

    def test_package_code_checks_clean(self, tmp_path, capsys):
        prog = tmp_path / "p.c"
        prog.write_text(
            "int *exception_ptr;\n"
            "int tag;\n"
            "void h(void);\n"
            "void f(void) { catch tag {h();} {throw tag;} }\n"
        )
        code = main([
            "check", "-p", "exceptions",
            "--extern", "setjmp", "--extern", "longjmp",
            "--extern", "error_handler",
            str(prog),
        ])
        assert code == 0
