"""Property-based round trips over generated *statement* trees."""

from hypothesis import given, settings, strategies as st

from repro.cast import nodes, render_c, stmts
from tests.conftest import parse_stmt
from tests.integration.test_property import expressions, identifiers

_simple_stmts = st.one_of(
    expressions.map(stmts.ExprStmt),
    st.just(stmts.BreakStmt()),
    st.just(stmts.ContinueStmt()),
    st.just(stmts.NullStmt()),
    st.just(stmts.ReturnStmt(None)),
    expressions.map(stmts.ReturnStmt),
    identifiers.map(stmts.GotoStmt),
)


def _compound_stmts(children):
    return st.one_of(
        st.tuples(expressions, children).map(
            lambda t: stmts.IfStmt(t[0], t[1])
        ),
        st.tuples(expressions, children, children).map(
            lambda t: stmts.IfStmt(t[0], t[1], t[2])
        ),
        st.tuples(expressions, children).map(
            lambda t: stmts.WhileStmt(t[0], t[1])
        ),
        st.tuples(children, expressions).map(
            lambda t: stmts.DoWhileStmt(t[0], t[1])
        ),
        st.tuples(expressions, expressions, expressions, children).map(
            lambda t: stmts.ForStmt(t[0], t[1], t[2], t[3])
        ),
        st.lists(children, max_size=3).map(
            lambda body: stmts.CompoundStmt([], body)
        ),
        st.tuples(identifiers, children).map(
            lambda t: stmts.LabeledStmt(t[0], t[1])
        ),
    )


statements = st.recursive(_simple_stmts, _compound_stmts, max_leaves=12)


class TestStatementRoundTrip:
    @given(statements)
    @settings(max_examples=150, deadline=None)
    def test_parse_print_parse(self, tree):
        printed = render_c(tree)
        reparsed = parse_stmt(printed)
        # Reparsing may brace a then-branch the printer protected
        # against dangling else; normalize by printing again.
        assert render_c(reparsed) == printed, printed

    @given(statements)
    @settings(max_examples=100, deadline=None)
    def test_print_idempotent(self, tree):
        once = render_c(tree)
        twice = render_c(parse_stmt(once))
        thrice = render_c(parse_stmt(twice))
        assert twice == thrice
