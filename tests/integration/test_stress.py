"""Stress tests: many macros, many invocations, deep nesting."""

import pytest

from repro import MacroProcessor
from repro.packages import load_standard


class TestManyMacros:
    def test_hundred_macro_definitions(self):
        mp = MacroProcessor()
        parts = [
            f"syntax exp k{i} {{| ( ) |}} {{ return(`({i})); }}"
            for i in range(100)
        ]
        mp.load("\n".join(parts))
        assert len(mp.table) == 100
        out = mp.expand_to_c("int x = k0() + k50() + k99();")
        assert "0 + 50 + 99" in out

    def test_five_hundred_invocations(self):
        mp = MacroProcessor()
        mp.load("syntax exp one {| ( ) |} { return(`(1)); }")
        terms = " + ".join("one()" for _ in range(500))
        out = mp.expand_to_c(f"int total = {terms};")
        assert mp.expansion_count == 500
        assert out.count("1") >= 500


class TestDeepNesting:
    def test_deeply_nested_invocations(self):
        mp = MacroProcessor()
        mp.load(
            "syntax exp wrap {| ( $$exp::e ) |} { return(`(($e) + 1)); }"
        )
        expr = "0"
        for _ in range(30):
            expr = f"wrap({expr})"
        out = mp.expand_to_c(f"int x = {expr};")
        assert out.count("+ 1") == 30

    def test_deeply_nested_statement_macros(self):
        mp = MacroProcessor()
        load_standard(mp)
        src = "tick();"
        for i in range(15):
            src = f"Painting {{ {src} }}"
        out = mp.expand_to_c(f"void f(void) {{ {src} }}")
        assert out.count("BeginPaint") == 15
        assert out.count("EndPaint") == 15

    def test_big_generated_enum(self):
        mp = MacroProcessor()
        from repro.packages import enumio

        enumio.register(mp)
        names = ", ".join(f"v{i}" for i in range(150))
        out = mp.expand_to_c(f"myenum big {{{names}}};")
        assert out.count("case ") == 150


class TestLargeMetaComputation:
    def test_expansion_time_loop(self):
        mp = MacroProcessor()
        mp.load(
            "syntax exp sum_to {| ( $$num::n ) |}"
            "{ int i; int total; total = 0;"
            "  for (i = 1; i <= num_value(n); i++) total = total + i;"
            "  return(make_num(total)); }"
        )
        out = mp.expand_to_c("int x = sum_to(1000);")
        assert "500500" in out

    def test_big_list_construction(self):
        mp = MacroProcessor()
        mp.load(
            "syntax stmt unroll {| ( $$num::n ) $$stmt::body |}"
            "{ int i; @stmt out[]; out = list();"
            "  for (i = 0; i < num_value(n); i++) out = cons(body, out);"
            "  return(`{{$out}}); }"
        )
        unit = mp.expand_to_ast("void f(void) { unroll (200) step(); }")
        block = unit.items[0].body.stmts[0]
        assert len(block.stmts) == 200
