"""Body-compiler parity sweep.

The body/template compiler (:mod:`repro.macros.codegen`) is a pure
optimization: for any macro program, expanding with ``compiled_bodies``
on or off must produce the same bytes, the same diagnostics, and the
same provenance chains.  This sweep drives every shipped package and
every ``examples/`` program through both paths — plain, hygienic, and
annotated (provenance comments + ``#line`` directives make the chains
byte-comparable) — and then re-runs the fuzz corpus as a second parity
oracle: seeded mutants must fail (or recover) identically both ways.

Knobs: ``FUZZ_SEED`` / ``FUZZ_MUTANTS`` (default 60 mutants here; the
crash-safety sweep owns the larger default).
"""

from __future__ import annotations

import os

import pytest

from repro import MacroProcessor, Ms2Options
from repro.errors import Ms2Error

from tests.fuzz.fuzzer import Mutator, load_corpus, make_processor
from .test_fastpath_parity import ALL_CASES, _expand

FUZZ_SEED = int(os.environ.get("FUZZ_SEED", str(0xC0FFEE)), 0)
FUZZ_MUTANTS = int(os.environ.get("FUZZ_MUTANTS", "60"))


class TestBodyCompileParity:
    @pytest.mark.parametrize("case", sorted(ALL_CASES))
    @pytest.mark.parametrize("hygienic", [False, True])
    def test_compiled_vs_interpreted_byte_identical(self, case, hygienic):
        reference = _expand(
            case, hygienic=hygienic, compiled_bodies=False, cache=False
        )
        for cache in (False, True):
            out = _expand(
                case,
                hygienic=hygienic,
                compiled_bodies=True,
                cache=cache,
            )
            assert out == reference, (
                f"{case}: output diverged with hygienic={hygienic}, "
                f"compiled_bodies=True, cache={cache}"
            )

    @pytest.mark.parametrize("case", sorted(ALL_CASES))
    def test_provenance_chains_identical(self, case):
        """``annotate=True`` renders each node's expansion backtrace
        (provenance comments and #line directives), so byte-equality
        of annotated output is byte-equality of provenance chains."""
        reference = _expand(
            case, annotate=True, compiled_bodies=False, cache=False
        )
        out = _expand(
            case, annotate=True, compiled_bodies=True, cache=False
        )
        assert out == reference, f"{case}: provenance diverged"

    def test_corpus_compiles_without_fallback(self):
        """Every shipped macro body must stay on the compiled path —
        a new meta-language construct that forces a fallback in a
        package body should be a conscious decision, not drift."""
        bodies = fallbacks = 0
        for case in sorted(ALL_CASES):
            setup, program = ALL_CASES[case]
            if callable(program):
                program = program()
            mp = MacroProcessor(options=Ms2Options(cache=False))
            setup(mp)
            mp.expand_to_c(program)
            bodies += mp.stats.bodies_compiled
            fallbacks += mp.stats.compile_fallbacks
        assert bodies > 0
        assert fallbacks == 0


def _run_both(program: str, loaders: list, *, recover: bool):
    """Expand one program with bodies compiled and interpreted;
    return the two comparable outcomes."""
    outcomes = []
    for compiled in (False, True):
        options = Ms2Options(recover=recover, compiled_bodies=compiled)
        try:
            mp = make_processor(loaders, options)
            result = mp.expand_to_c(program, "<fuzz>")
        except Ms2Error as exc:
            outcomes.append(("raise", type(exc).__name__, str(exc)))
            continue
        except BaseException as exc:  # noqa: BLE001 - report, don't mask
            outcomes.append(("escape", type(exc).__name__, str(exc)))
            continue
        if recover:
            text, diags = result
            outcomes.append(
                ("ok", text, [d.to_json() for d in diags])
            )
        else:
            outcomes.append(("ok", result))
    return outcomes


class TestFuzzParityOracle:
    """Seeded mutants as a second parity oracle: malformed input must
    produce identical errors/diagnostics on both body paths."""

    @pytest.mark.parametrize("mode", ["failfast", "recover"])
    def test_mutants_behave_identically(self, mode):
        corpus = load_corpus()
        mutator = Mutator(FUZZ_SEED ^ 0xB0D1)
        failures = []
        for i in range(FUZZ_MUTANTS):
            name, program, loaders = corpus[i % len(corpus)]
            mutant, op = mutator.mutate(program)
            interpreted, compiled = _run_both(
                mutant, loaders, recover=(mode == "recover")
            )
            if interpreted != compiled:
                failures.append(
                    f"mutant {i} ({name}, {op}, {mode}): "
                    f"interpreted={interpreted[:2]!r} "
                    f"compiled={compiled[:2]!r}"
                )
        assert not failures, "\n".join(failures[:10])

    def test_unmutated_corpus_identical(self):
        for name, program, loaders in load_corpus():
            interpreted, compiled = _run_both(
                program, loaders, recover=False
            )
            assert interpreted == compiled, name
