"""Ms2Options: the unified configuration surface.

Covers the three contracts the redesign introduced:

- **CLI/API parity** — for *every* option field, the value the CLI
  derives from its defaults equals ``Ms2Options()``, and each flag
  maps onto exactly the field it names;
- **legacy shim** — every old keyword spelling still works, warns
  :class:`Ms2DeprecationWarning`, and behaves identically to the
  options equivalent;
- **hash stability** — ``options_hash`` ignores observability knobs
  and moves with every semantic knob (it keys the persistent cache).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import ExpandResult, MacroProcessor, Ms2Options, expand_source
from repro.cli import build_arg_parser, options_from_args
from repro.diagnostics import DEFAULT_MAX_ERRORS, ExpansionBudget
from repro.options import OPTION_FIELDS, Ms2DeprecationWarning

PROGRAM = """
syntax stmt Twice {| $$stmt::body |}
{
  return(`{ $body; $body; });
}
void f(void) { Twice { step(); } }
"""

BROKEN = "void broken( {\n"


def parse(argv: list[str]):
    return build_arg_parser().parse_args(argv)


# ---------------------------------------------------------------------------
# CLI/API parity — every option, both subcommands
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("command", [["expand", "x.c"], ["build", "x.c"]])
@pytest.mark.parametrize("name", OPTION_FIELDS)
def test_cli_defaults_match_api_defaults(command, name) -> None:
    """`repro expand`/`repro build` with no flags must configure the
    pipeline exactly as `Ms2Options()` does — field by field, so a
    new option that misses the CLI mapping fails here by name."""
    options = options_from_args(parse(command))
    assert getattr(options, name) == getattr(Ms2Options(), name), name


FLAG_CASES = [
    (["--hygienic"], {"hygienic": True}),
    (["--keep-meta"], {"keep_meta": True}),
    (["--annotate"], {"annotate": True}),
    (["--no-compiled-patterns"], {"compiled_patterns": False}),
    (["--no-cache"], {"cache": False}),
    (["--recover"], {"recover": True}),
    (["--recover", "--max-errors", "3"],
     {"recover": True, "max_errors": 3}),
    (["--max-expansions", "7"], {"max_expansions": 7}),
    (["--max-output-nodes", "9000"], {"max_output_nodes": 9000}),
    (["--deadline-ms", "250"], {"deadline_s": 0.25}),
    (["--profile"], {"profile": True}),
]


@pytest.mark.parametrize("subcommand", ["expand", "build"])
@pytest.mark.parametrize("flags,expected", FLAG_CASES)
def test_each_flag_maps_to_its_field(subcommand, flags, expected) -> None:
    options = options_from_args(parse([subcommand, "x.c", *flags]))
    assert options == Ms2Options(**expected)


def test_trace_subcommand_shares_defaults() -> None:
    options = options_from_args(parse(["trace", "x.c"]))
    assert options == Ms2Options()


# ---------------------------------------------------------------------------
# The options value itself
# ---------------------------------------------------------------------------


def test_defaults() -> None:
    options = Ms2Options()
    assert options.hygienic is False
    assert options.compiled_patterns is True
    assert options.cache is True
    assert options.recover is False
    assert options.max_errors == DEFAULT_MAX_ERRORS
    assert options.max_expansions is None
    assert options.trace is False


def test_frozen() -> None:
    with pytest.raises(dataclasses.FrozenInstanceError):
        Ms2Options().hygienic = True  # type: ignore[misc]


def test_replace() -> None:
    base = Ms2Options()
    derived = base.replace(recover=True, max_errors=5)
    assert derived.recover and derived.max_errors == 5
    assert base.recover is False  # untouched


def test_make_budget() -> None:
    assert Ms2Options().make_budget() is None
    budget = Ms2Options(max_expansions=4).make_budget()
    assert isinstance(budget, ExpansionBudget)
    assert budget.max_expansions == 4
    # Fresh per call: budgets latch, so they must not be shared.
    assert budget is not Ms2Options(max_expansions=4).make_budget()


def test_hash_is_stable_and_ignores_observability() -> None:
    base = Ms2Options()
    assert base.options_hash() == Ms2Options().options_hash()
    noisy = base.replace(
        trace=True, profile=True,
        trace_hooks=(lambda event, span: None,),
    )
    assert noisy.options_hash() == base.options_hash()


@pytest.mark.parametrize(
    "change",
    [
        {"hygienic": True},
        {"keep_meta": True},
        {"annotate": True},
        {"compiled_patterns": False},
        {"cache": False},
        {"recover": True},
        {"max_errors": 3},
        {"max_expansions": 10},
        {"max_output_nodes": 10},
        {"deadline_s": 1.0},
    ],
)
def test_hash_moves_with_every_semantic_field(change) -> None:
    assert (
        Ms2Options(**change).options_hash() != Ms2Options().options_hash()
    )


def test_without_runtime_hooks_is_picklable() -> None:
    import pickle

    noisy = Ms2Options(trace_hooks=(lambda event, span: None,))
    clean = noisy.without_runtime_hooks()
    assert clean.trace_hooks == ()
    assert pickle.loads(pickle.dumps(clean)) == clean


# ---------------------------------------------------------------------------
# The legacy-kwargs shim
# ---------------------------------------------------------------------------


def test_constructor_kwargs_warn_and_work() -> None:
    with pytest.warns(Ms2DeprecationWarning, match="hygienic"):
        mp = MacroProcessor(hygienic=True)
    assert mp.options.hygienic is True


def test_constructor_kwargs_match_options_behaviour() -> None:
    with pytest.warns(Ms2DeprecationWarning):
        legacy = MacroProcessor(cache=False).expand_to_c(PROGRAM)
    modern = MacroProcessor(options=Ms2Options(cache=False)).expand_to_c(
        PROGRAM
    )
    assert legacy == modern


def test_unknown_constructor_kwarg_is_an_error() -> None:
    with pytest.raises(TypeError, match="hygenic"):
        MacroProcessor(hygenic=True)  # typo must not pass silently


def test_per_call_recover_warns_and_works() -> None:
    mp = MacroProcessor()
    with pytest.warns(Ms2DeprecationWarning, match="per call"):
        output, diagnostics = mp.expand_to_c(BROKEN, recover=True)
    assert diagnostics
    modern = MacroProcessor(options=Ms2Options(recover=True)).expand(
        BROKEN
    )
    assert not modern.ok
    assert output == modern.output


def test_legacy_budget_instance_warns_and_is_observable() -> None:
    budget = ExpansionBudget(max_expansions=50)
    with pytest.warns(Ms2DeprecationWarning, match="budget"):
        mp = MacroProcessor(budget=budget)
    mp.expand_to_c(PROGRAM)
    assert budget.expansions_used > 0  # caller's instance saw counters


def test_expand_source_hygienic_kwarg_warns() -> None:
    with pytest.warns(Ms2DeprecationWarning, match="hygienic"):
        legacy = expand_source(PROGRAM, hygienic=True)
    modern = expand_source(PROGRAM, options=Ms2Options(hygienic=True))
    assert legacy == modern


def test_clean_api_emits_no_warnings(recwarn) -> None:
    mp = MacroProcessor(options=Ms2Options(recover=True))
    mp.expand(PROGRAM)
    expand_source(PROGRAM, options=Ms2Options())
    assert [w for w in recwarn if issubclass(
        w.category, DeprecationWarning
    )] == []


# ---------------------------------------------------------------------------
# ExpandResult
# ---------------------------------------------------------------------------


def test_expand_returns_result_object() -> None:
    mp = MacroProcessor(options=Ms2Options(trace=True))
    result = mp.expand(PROGRAM, "prog.c")
    assert isinstance(result, ExpandResult)
    assert result.ok
    assert "step" in result.output
    assert result.diagnostics == []
    assert result.stats is mp.stats
    assert result.spans, "tracing was on: top-level spans expected"
    record = result.as_dict()
    assert record["ok"] is True
    assert record["output"] == result.output
    assert record["spans"]


def test_expand_result_carries_diagnostics() -> None:
    mp = MacroProcessor(options=Ms2Options(recover=True))
    result = mp.expand(BROKEN)
    assert not result.ok
    assert any(d.severity == "error" for d in result.diagnostics)
    payload = result.as_dict()
    assert payload["ok"] is False
    assert payload["diagnostics"][0]["severity"] == "error"
