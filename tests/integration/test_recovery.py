"""Recovery mode: multi-error diagnostics, poisoned nodes, parity.

The contract under test: ``expand_program`` under
``Ms2Options(recover=True)`` returns
``(output, diagnostics)`` — one diagnostic per independent fault, the
first identical to what fail-fast mode raises — while the default
fail-fast behaviour is byte-for-byte unchanged.
"""

import pytest

from repro import MacroProcessor, Ms2Options
from repro.cast import nodes
from repro.diagnostics import (
    DEFAULT_MAX_ERRORS,
    Diagnostic,
    DiagnosticSink,
    ERROR,
    NOTE,
    WARNING,
)
from repro.errors import Ms2Error, ParseError
from tests.conftest import assert_c_equal

#: (name, broken source) — each fixture fails fast with one Ms2Error.
#: The faults sit in their own top-level items, so the recovered
#: remainder must match the expansion of the source without them.
BROKEN_FIXTURES = [
    (
        "missing-semicolon",
        "void ok(void) { a(); }\n"
        "int bad = 1 2;\n"
        "void ok2(void) { b(); }\n",
    ),
    (
        "unclosed-paren",
        "void ok(void) { a(); }\n"
        "int bad = (1 + ;\n"
        "void ok2(void) { b(); }\n",
    ),
    (
        "bad-macro-definition",
        "void ok(void) { a(); }\n"
        "syntax stmt Bad {| $oops |} { return(`{;}); }\n"
        "void ok2(void) { b(); }\n",
    ),
    (
        "macro-body-type-error",
        "void ok(void) { a(); }\n"
        "syntax stmt Bad {| ( ) |} { return(1 + `{;}); }\n"
        "void ok2(void) { b(); }\n",
    ),
    (
        "unknown-character",
        "void ok(void) { a(); }\n"
        "int bad = @@@;\n"
        "void ok2(void) { b(); }\n",
    ),
]

CLEAN_REMAINDER = "void ok(void) { a(); }\nvoid ok2(void) { b(); }\n"


def _recovering() -> MacroProcessor:
    return MacroProcessor(options=Ms2Options(recover=True))


class TestMultiErrorRecovery:
    def test_three_faults_three_diagnostics(self):
        # ISSUE acceptance: a file with >= 3 independent faults must
        # yield >= 3 diagnostics in recover mode.
        src = (
            "void f(void)\n"
            "{\n"
            "    int x;\n"
            "    x = ;\n"        # fault 1: missing expression
            "    y 12 bad;\n"    # fault 2: garbage statement
            "    x = (1 +;\n"    # fault 3: unclosed parenthesis
            "    ok();\n"
            "}\n"
        )
        mp = MacroProcessor(options=Ms2Options(recover=True))
        text, diags = mp.expand_to_c(src)
        errors = [d for d in diags if d.severity == ERROR]
        assert len(errors) >= 3
        assert "ok()" in text
        assert mp.stats.parse_recoveries >= 3

    def test_fail_fast_is_the_default(self):
        src = "void f(void) { x = ; }"
        with pytest.raises(ParseError):
            MacroProcessor().expand_to_c(src)

    def test_poisoned_statements_print_as_comments(self):
        src = "void f(void) { x = ; ok(); }"
        text, diags = _recovering().expand_to_c(src)
        assert "/* <error:" in text
        assert "ok();" in text
        assert len(diags) == 1

    def test_expansion_failure_records_backtrace(self):
        src = (
            "syntax stmt Pick {| ( $$exp::e ) |} {\n"
            "    if (simple_expression(e)) return(`{$e;});\n"
            "    error(\"too complex\");\n"
            "    return(`{;});\n"
            "}\n"
            "void f(void) { Pick(a + b * c()); done(); }\n"
        )
        mp = _recovering()
        text, diags = mp.expand_to_c(src, "prog.c")
        assert "done();" in text
        assert "/* <error:" in text
        (diag,) = diags
        assert "expanded from Pick at prog.c:6" in diag.rendered
        assert mp.stats.expansion_recoveries == 1

    def test_recovered_unit_carries_poisoned_nodes(self):
        src = "void f(void) { x = ; }\nint bad = 1 2;\n"
        unit, diags = _recovering().expand_program(src)
        kinds = {
            type(n).__name__
            for item in unit.items
            for n in _walk_all(item)
        }
        assert "ErrorStmt" in kinds or "ErrorDecl" in kinds
        assert len(diags) == 2

    def test_max_errors_cap(self):
        src = "void f(void) {\n" + "    x = ;\n" * 10 + "}\n"
        text, diags = MacroProcessor(
            options=Ms2Options(recover=True, max_errors=3)
        ).expand_to_c(src)
        errors = [d for d in diags if d.severity == ERROR]
        notes = [d for d in diags if d.severity == NOTE]
        assert len(errors) == 3
        assert len(notes) == 1
        assert "too many errors" in notes[0].message

    def test_recover_never_raises_on_garbage(self):
        for src in ("{{{{", "}}}}", ";;;;", "@#!$", "syntax", "int"):
            out = _recovering().expand_to_c(src)
            assert isinstance(out, tuple)


class TestRecoveryParity:
    @pytest.mark.parametrize(
        "name,src", BROKEN_FIXTURES, ids=[n for n, _ in BROKEN_FIXTURES]
    )
    def test_first_diagnostic_matches_fail_fast(self, name, src):
        with pytest.raises(Ms2Error) as excinfo:
            MacroProcessor().expand_to_c(src, "fixture.c")
        _, diags = _recovering().expand_to_c(src, "fixture.c")
        assert diags, "recover mode reported nothing"
        first = diags[0]
        assert first.severity == ERROR
        assert first.rendered == str(excinfo.value)
        assert first.category == type(excinfo.value).__name__

    @pytest.mark.parametrize(
        "name,src", BROKEN_FIXTURES, ids=[n for n, _ in BROKEN_FIXTURES]
    )
    def test_recovered_remainder_matches_seed_output(self, name, src):
        # Faults live in their own top-level items; everything else
        # must print exactly as the seed printer prints the clean
        # program (poisoned items render as comments, which the
        # token-level comparison ignores).
        expected = MacroProcessor().expand_to_c(CLEAN_REMAINDER)
        recovered, _ = _recovering().expand_to_c(src)
        assert_c_equal(recovered, expected)


class TestDiagnosticSink:
    def test_severities_and_counts(self):
        sink = DiagnosticSink(max_errors=5)
        assert sink.emit(Diagnostic(WARNING, "w"))
        assert sink.emit(Diagnostic(ERROR, "e1"))
        assert sink.emit(Diagnostic(NOTE, "n"))
        assert sink.error_count == 1
        assert len(sink.errors) == 1
        assert len(sink) == 3
        assert not sink.saturated

    def test_cap_appends_note_and_latches(self):
        sink = DiagnosticSink(max_errors=2)
        assert sink.emit(Diagnostic(ERROR, "e1"))
        assert not sink.emit(Diagnostic(ERROR, "e2"))
        assert sink.saturated
        assert not sink.emit(Diagnostic(ERROR, "e3"))
        # e3 dropped; cap note recorded exactly once.
        assert [d.message for d in sink.errors] == ["e1", "e2"]
        assert sum(1 for d in sink if d.severity == NOTE) == 1

    def test_from_error_preserves_rendering(self):
        from repro.errors import SourceLocation

        exc = ParseError("boom", SourceLocation(3, 7, 0, "x.c"))
        diag = Diagnostic.from_error(exc)
        assert diag.rendered == str(exc)
        assert diag.location.line == 3
        assert diag.category == "ParseError"
        assert diag.render() == f"error: {exc}"

    def test_default_cap(self):
        assert DiagnosticSink().max_errors == DEFAULT_MAX_ERRORS


class TestRecoverCli:
    def test_cli_recover_exit_code_and_output(self, tmp_path, capsys):
        from repro.cli import main

        prog = tmp_path / "prog.c"
        prog.write_text("void f(void) { x = ; ok(); }\n")
        code = main(["expand", "--recover", str(prog)])
        captured = capsys.readouterr()
        assert code == 1
        assert "/* <error:" in captured.out
        assert "ok();" in captured.out
        assert "error:" in captured.err

    def test_cli_recover_clean_file_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        prog = tmp_path / "prog.c"
        prog.write_text("void f(void) { ok(); }\n")
        code = main(["expand", "--recover", str(prog)])
        captured = capsys.readouterr()
        assert code == 0
        assert "ok();" in captured.out

    def test_cli_max_errors(self, tmp_path, capsys):
        from repro.cli import main

        prog = tmp_path / "prog.c"
        prog.write_text("void f(void) {\n" + "x = ;\n" * 8 + "}\n")
        code = main(["expand", "--recover", "--max-errors", "2", str(prog)])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.count("error:") == 2
        assert "too many errors" in captured.err


def _walk_all(item):
    from repro.cast.base import walk

    yield from walk(item)
