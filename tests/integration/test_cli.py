"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(
        "syntax stmt trace {| $$stmt::body |}"
        "{ return(`{{enter(); $body; leave();}}); }\n"
        "void f(void) { trace work(); }\n"
    )
    return path


class TestExpand:
    def test_expand_file(self, program_file, capsys):
        assert main(["expand", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "enter()" in out
        assert "syntax" not in out

    def test_keep_meta(self, program_file, capsys):
        assert main(["expand", "--keep-meta", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "syntax stmt trace" in out

    def test_package_then_program(self, tmp_path, capsys):
        pkg = tmp_path / "pkg.c"
        pkg.write_text(
            "syntax exp two {| ( ) |} { return(`(2)); }\n"
        )
        prog = tmp_path / "prog.c"
        prog.write_text("int x = two();\n")
        assert main(["expand", str(pkg), str(prog)]) == 0
        out = capsys.readouterr().out
        assert "int x = 2;" in out
        assert "two" not in out

    def test_builtin_package(self, tmp_path, capsys):
        prog = tmp_path / "prog.c"
        prog.write_text("void f(void) { throw tag; }\n")
        assert main(["expand", "-p", "exceptions", str(prog)]) == 0
        assert "longjmp" in capsys.readouterr().out

    def test_hygienic_flag(self, tmp_path, capsys):
        prog = tmp_path / "prog.c"
        prog.write_text(
            "syntax stmt g {| $$stmt::b |}"
            "{ return(`{{int saved = 0; $b;}}); }\n"
            "void f(void) { g w(); }\n"
        )
        assert main(["expand", "--hygienic", str(prog)]) == 0
        out = capsys.readouterr().out
        assert "int saved" not in out

    def test_error_reported_with_location(self, tmp_path, capsys):
        prog = tmp_path / "bad.c"
        prog.write_text("int x = ;\n")
        assert main(["expand", str(prog)]) == 1
        err = capsys.readouterr().err
        assert "bad.c" in err

    def test_missing_file(self, tmp_path, capsys):
        assert main(["expand", str(tmp_path / "nope.c")]) == 1


class TestExpandObservability:
    def test_stats_json(self, program_file, capsys):
        import json

        assert main(["expand", "--stats-json", str(program_file)]) == 0
        err = capsys.readouterr().err
        payload = json.loads(err.splitlines()[-1])
        assert payload["expansions"] == 1
        assert "phases" not in payload  # profiling was off

    def test_profile(self, program_file, capsys):
        assert main(["expand", "--profile", str(program_file)]) == 0
        err = capsys.readouterr().err
        assert "phase profile" in err
        assert "meta-eval" in err

    def test_annotate(self, program_file, capsys):
        assert main(["expand", "--annotate", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "/* <- trace @" in out
        assert "#line" in out


class TestTrace:
    def test_span_tree_printed(self, program_file, capsys):
        assert main(["trace", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "trace @" in out
        assert "[miss, compiled]" in out

    def test_profile_flag(self, program_file, capsys):
        assert main(["trace", "--profile", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "phase profile" in out

    def test_jsonl_sink(self, program_file, tmp_path, capsys):
        import json

        log = tmp_path / "spans.jsonl"
        assert main(["trace", "--jsonl", str(log), str(program_file)]) == 0
        [record] = [
            json.loads(line) for line in log.read_text().splitlines()
        ]
        assert record["event"] == "span"
        assert record["macro"] == "trace"

    def test_example_script_mode(self, capsys):
        from pathlib import Path

        example = (
            Path(__file__).resolve().parents[2]
            / "examples" / "quickstart.py"
        )
        assert main(["trace", str(example)]) == 0
        out = capsys.readouterr().out
        assert "Painting @" in out

    def test_failure_prints_partial_tree_and_backtrace(
        self, tmp_path, capsys
    ):
        prog = tmp_path / "bad.c"
        prog.write_text(
            "syntax exp boom {| ( ) |}"
            '{ error("dead"); return(`(0)); }\n'
            "int x = boom();\n"
        )
        assert main(["trace", str(prog)]) == 1
        captured = capsys.readouterr()
        assert "!!" in captured.out and "dead" in captured.out
        assert "expanded from boom" in captured.err


class TestMacros:
    def test_list_builtin_package(self, capsys):
        assert main(["macros", "-p", "exceptions"]) == 0
        out = capsys.readouterr().out
        assert "syntax stmt throw" in out
        assert "syntax stmt catch" in out

    def test_list_user_file(self, program_file, capsys):
        assert main(["macros", str(program_file)]) == 0
        assert "trace" in capsys.readouterr().out


class TestFigures:
    def test_prints_both_tables(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "(declaration (int) y)" in out
        assert "Syntactically Illegal Program" in out
