"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(
        "syntax stmt trace {| $$stmt::body |}"
        "{ return(`{{enter(); $body; leave();}}); }\n"
        "void f(void) { trace work(); }\n"
    )
    return path


class TestExpand:
    def test_expand_file(self, program_file, capsys):
        assert main(["expand", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "enter()" in out
        assert "syntax" not in out

    def test_keep_meta(self, program_file, capsys):
        assert main(["expand", "--keep-meta", str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "syntax stmt trace" in out

    def test_package_then_program(self, tmp_path, capsys):
        pkg = tmp_path / "pkg.c"
        pkg.write_text(
            "syntax exp two {| ( ) |} { return(`(2)); }\n"
        )
        prog = tmp_path / "prog.c"
        prog.write_text("int x = two();\n")
        assert main(["expand", str(pkg), str(prog)]) == 0
        out = capsys.readouterr().out
        assert "int x = 2;" in out
        assert "two" not in out

    def test_builtin_package(self, tmp_path, capsys):
        prog = tmp_path / "prog.c"
        prog.write_text("void f(void) { throw tag; }\n")
        assert main(["expand", "-p", "exceptions", str(prog)]) == 0
        assert "longjmp" in capsys.readouterr().out

    def test_hygienic_flag(self, tmp_path, capsys):
        prog = tmp_path / "prog.c"
        prog.write_text(
            "syntax stmt g {| $$stmt::b |}"
            "{ return(`{{int saved = 0; $b;}}); }\n"
            "void f(void) { g w(); }\n"
        )
        assert main(["expand", "--hygienic", str(prog)]) == 0
        out = capsys.readouterr().out
        assert "int saved" not in out

    def test_error_reported_with_location(self, tmp_path, capsys):
        prog = tmp_path / "bad.c"
        prog.write_text("int x = ;\n")
        assert main(["expand", str(prog)]) == 1
        err = capsys.readouterr().err
        assert "bad.c" in err

    def test_missing_file(self, tmp_path, capsys):
        assert main(["expand", str(tmp_path / "nope.c")]) == 1


class TestMacros:
    def test_list_builtin_package(self, capsys):
        assert main(["macros", "-p", "exceptions"]) == 0
        out = capsys.readouterr().out
        assert "syntax stmt throw" in out
        assert "syntax stmt catch" in out

    def test_list_user_file(self, program_file, capsys):
        assert main(["macros", str(program_file)]) == 0
        assert "trace" in capsys.readouterr().out


class TestFigures:
    def test_prints_both_tables(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "(declaration (int) y)" in out
        assert "Syntactically Illegal Program" in out
