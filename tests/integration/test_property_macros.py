"""Property-based fuzzing of the macro pipeline itself.

Generates random (but lookahead-valid) macro patterns together with
matching invocations, and checks the whole chain — definition-time
checking, invocation parsing, expansion, printing — preserves every
actual parameter.
"""

from hypothesis import given, settings, strategies as st

from repro import MacroProcessor, Ms2Options
from repro.cast import nodes
from repro.cast.base import walk
from tests.integration.test_property import identifiers

#: Parameter kinds we can generate actuals for.
_PARAM_KINDS = st.sampled_from(["id", "num", "exp"])

#: Distinct buzz tokens that (a) keep one-token lookahead trivially
#: valid and (b) never continue an expression (the validator rejects
#: operator tokens after exp parameters — see
#: ``EXPRESSION_CONTINUATIONS`` in repro.macros.lookahead).
_BUZZ = ["!", ";", ":", "]", ")", "~", "#", ","]


@st.composite
def macro_cases(draw):
    """A (pattern_text, invocation_text, expected_actuals) triple."""
    n_params = draw(st.integers(min_value=1, max_value=5))
    kinds = [draw(_PARAM_KINDS) for _ in range(n_params)]

    pattern_parts: list[str] = []
    invocation_parts: list[str] = []
    expected: list[str] = []
    for i, kind in enumerate(kinds):
        buzz = _BUZZ[i % len(_BUZZ)]
        pattern_parts.append(buzz)
        invocation_parts.append(buzz)
        pattern_parts.append(f"$${kind}::p{i}")
        if kind == "id":
            actual = draw(identifiers)
        elif kind == "num":
            actual = str(draw(st.integers(min_value=0, max_value=9999)))
        else:
            a = draw(identifiers)
            b = draw(st.integers(min_value=0, max_value=99))
            actual = f"({a} + {b})"
        invocation_parts.append(actual)
        expected.append(actual)
    # Closing buzz token so exp parameters terminate deterministically.
    pattern_parts.append("!")
    invocation_parts.append("!")

    params = ", ".join(f"$p{i}" for i in range(n_params))
    definition = (
        f"syntax stmt fuzzed {{| {' '.join(pattern_parts)} |}}\n"
        f"{{ return(`{{sink({params});}}); }}"
    )
    invocation = "fuzzed " + " ".join(invocation_parts) + " ;"
    return definition, invocation, expected


class TestMacroPipelineFuzz:
    @given(macro_cases())
    @settings(max_examples=60, deadline=None)
    def test_actuals_survive_expansion(self, case):
        definition, invocation, expected = case
        mp = MacroProcessor()
        mp.load(definition)
        unit = mp.expand_to_ast(f"void f(void) {{ {invocation} }}")
        call = unit.items[0].body.stmts[0].expr
        assert isinstance(call, nodes.Call)
        assert len(call.args) == len(expected)
        from repro.cast.printer import render_c

        for arg, text in zip(call.args, expected):
            printed = render_c(arg).replace("(", "").replace(")", "")
            assert printed == text.replace("(", "").replace(")", "")

    @given(macro_cases())
    @settings(max_examples=30, deadline=None)
    def test_compiled_engine_agrees(self, case):
        definition, invocation, _ = case
        program = f"void f(void) {{ {invocation} }}"

        plain = MacroProcessor()
        plain.load(definition)
        compiled = MacroProcessor(options=Ms2Options(compiled_patterns=True))
        compiled.load(definition)
        assert plain.expand_to_c(program) == compiled.expand_to_c(program)

    @given(macro_cases())
    @settings(max_examples=30, deadline=None)
    def test_no_placeholders_survive(self, case):
        definition, invocation, _ = case
        mp = MacroProcessor()
        mp.load(definition)
        unit = mp.expand_to_ast(f"void f(void) {{ {invocation} }}")
        from repro.cast import decls, stmts

        leftovers = [
            n
            for n in walk(unit)
            if isinstance(
                n,
                (nodes.PlaceholderExpr, stmts.PlaceholderStmt,
                 decls.PlaceholderDecl, nodes.MacroInvocation),
            )
        ]
        assert leftovers == []
