"""End-to-end tests of the MacroProcessor facade."""

import pytest

from repro import MacroProcessor, expand_source
from repro.cast import decls
from repro.errors import (
    ExpansionError,
    MacroSyntaxError,
    MacroTypeError,
    ParseError,
)
from tests.conftest import assert_c_equal


class TestBasicPipeline:
    def test_plain_c_passes_through(self, mp):
        src = "int x = 1;\nvoid f(void)\n{x = 2;}\n"
        assert_c_equal(mp.expand_to_c(src), src)

    def test_definition_and_use_in_one_file(self, mp):
        out = mp.expand_to_c(
            "syntax stmt trace {| $$stmt::body |}"
            "{ return(`{{enter(); $body; leave();}}); }\n"
            "void f(void) { trace work(); }"
        )
        assert_c_equal(
            out, "void f(void) {{enter(); work(); leave();}}"
        )

    def test_meta_program_stripped_from_output(self, mp):
        out = mp.expand_to_c(
            "metadcl int n;\n"
            "syntax stmt m {| ( ) |} { return(`{w();}); }\n"
            "int keep;\n"
        )
        assert_c_equal(out, "int keep;")

    def test_expand_program_keeps_meta_items(self, mp):
        unit = mp.expand_program(
            "syntax stmt m {| ( ) |} { return(`{w();}); }\nint keep;"
        )
        assert any(isinstance(i, decls.MacroDef) for i in unit.items)

    def test_separate_files(self, mp):
        # Macro package in one "file", program in another.
        mp.load("syntax exp two {| ( ) |} { return(`(2)); }")
        out = mp.expand_to_c("int x = two();")
        assert_c_equal(out, "int x = 2;")

    def test_typedefs_shared_across_files(self, mp):
        mp.load("typedef int handle_t;")
        out = mp.expand_to_c("handle_t h;")
        assert_c_equal(out, "handle_t h;")

    def test_expand_source_convenience(self):
        out = expand_source(
            "void f(void) { double_up(x); }",
            packages=[
                "syntax stmt double_up {| ( $$exp::e ) |}"
                "{ return(`{$e = 2 * ($e);}); }"
            ],
        )
        assert "x = 2 * x" in out


class TestMultipleMacros:
    def test_definition_order_respected(self, mp):
        out = mp.expand_to_c(
            "syntax exp one {| ( ) |} { return(`(1)); }\n"
            "syntax exp two {| ( ) |} { return(`(one() + one())); }\n"
            "int x = two();"
        )
        assert_c_equal(out, "int x = 1 + 1;")

    def test_redefinition_rejected(self, mp):
        with pytest.raises(MacroSyntaxError):
            mp.load(
                "syntax stmt m {| ( ) |} { return(`{a();}); }\n"
                "syntax stmt m {| ( ) |} { return(`{b();}); }"
            )

    def test_many_macros_coexist(self, mp):
        parts = [
            f"syntax exp m{i} {{| ( ) |}} {{ return(`({i})); }}"
            for i in range(20)
        ]
        mp.load("\n".join(parts))
        out = mp.expand_to_c("int x = m7() + m13();")
        assert_c_equal(out, "int x = 7 + 13;")


class TestSyntacticSafety:
    """The paper's central claim: macro errors surface at definition
    time, in the macro writer's code."""

    def test_ill_typed_template_rejected_at_definition(self, mp):
        with pytest.raises((MacroTypeError, ParseError)):
            mp.load(
                "syntax stmt bad {| $$stmt::s |} { return(`(1 + $s)); }"
            )

    def test_wrong_return_type_rejected_at_definition(self, mp):
        with pytest.raises(MacroTypeError):
            mp.load(
                "syntax stmt bad {| ( ) |} { return(`(1 + 2)); }"
            )

    def test_undeclared_meta_variable_rejected(self, mp):
        with pytest.raises(MacroTypeError):
            mp.load(
                "syntax stmt bad {| ( ) |} { return(`{$mystery;}); }"
            )

    def test_user_never_sees_definition_errors(self, mp):
        # A well-typed macro can't produce a syntax error at use sites:
        # uses only fail on *their own* syntax.
        mp.load(
            "syntax stmt ok {| ( $$exp::e ) |} { return(`{f($e);}); }"
        )
        with pytest.raises(ParseError) as exc:
            mp.expand_to_c("void g(void) { ok(1 +); }")
        # The reported location is in the user's invocation.
        assert exc.value.location is not None

    def test_invocations_only_where_type_allowed(self, mp):
        mp.load(
            "syntax decl gen[] {| $$id::n ; |} { return(list(`[int $n;])); }"
        )
        # decl macro at expression position: 'gen' is just an ident.
        with pytest.raises(ParseError):
            mp.expand_to_c("void f(void) { x = gen y;; }")


class TestErrorLocations:
    def test_lex_error_location(self, mp):
        with pytest.raises(Exception) as exc:
            mp.expand_to_c("int x = \x01;")
        assert getattr(exc.value, "location", None) is not None

    def test_expansion_error_mentions_macro(self, mp):
        mp.load(
            "syntax stmt fail {| ( ) |}"
            '{ error("deliberate"); return(`{;}); }'
        )
        with pytest.raises(ExpansionError) as exc:
            mp.expand_to_c("void f(void) { fail(); }")
        assert "deliberate" in str(exc.value)


class TestStatistics:
    def test_expansion_count(self, mp):
        mp.load("syntax stmt m {| ( ) |} { return(`{w();}); }")
        mp.expand_to_c("void f(void) { m(); m(); }")
        assert mp.expansion_count == 2


class TestIdempotence:
    def test_plain_c_round_trips_repeatedly(self, mp):
        src = "int x;\nvoid f(void)\n{x = 1;}\n"
        once = mp.expand_to_c(src)
        twice = MacroProcessor().expand_to_c(once)
        assert once == twice
