"""The :mod:`repro.api` compatibility surface, pinned.

``repro.api.__all__`` is the public contract: this test fails if a
name is ever removed or renamed, if an entry point loses its minimal
call shape, or if the facade drifts from the implementation objects
it re-exports.  *Adding* names is fine — the assertion is a superset
check, so the surface can grow but never shrink.
"""

from __future__ import annotations

import inspect

import repro.api as api

#: The v1 surface.  Names may be ADDED over time; removing or
#: renaming any of these is a compatibility break.
V1_SURFACE = frozenset(
    {
        "Ms2Options",
        "ExpandResult",
        "Diagnostic",
        "MacroProcessor",
        "expand",
        "expand_file",
        "Ms2Client",
        "serve",
    }
)


def test_api_surface_never_shrinks() -> None:
    assert set(api.__all__) >= V1_SURFACE, (
        "repro.api.__all__ lost part of the v1 surface: "
        f"{sorted(V1_SURFACE - set(api.__all__))}"
    )


def test_every_exported_name_resolves() -> None:
    for name in api.__all__:
        assert getattr(api, name, None) is not None, name


def test_facade_reexports_the_real_objects() -> None:
    from repro.client import Ms2Client
    from repro.diagnostics import Diagnostic
    from repro.driver.cacheconfig import CacheConfig
    from repro.engine import MacroProcessor
    from repro.options import ExpandResult, Ms2Options
    from repro.server import serve

    assert api.Ms2Options is Ms2Options
    assert api.ExpandResult is ExpandResult
    assert api.Diagnostic is Diagnostic
    assert api.MacroProcessor is MacroProcessor
    assert api.Ms2Client is Ms2Client
    assert api.serve is serve
    assert api.CacheConfig is CacheConfig


def test_expand_minimal_call_shape() -> None:
    """``expand(source)`` with nothing else must keep working."""
    result = api.expand("int x = 1;")
    assert isinstance(result, api.ExpandResult)
    assert "int x = 1;" in result.output
    assert result.ok


def test_expand_with_packages_and_options() -> None:
    result = api.expand(
        "int main() { unless (0) { return 1; } return 0; }",
        "prog.c",
        options=api.Ms2Options(trace=True),
        package_sources=[
            (
                "unless.ms2",
                "syntax stmt unless {| ( $$exp::c ) $$stmt::body |}"
                " { return(`{if (!($c)) { $body; }}); }",
            )
        ],
    )
    assert result.ok
    assert "if" in result.output
    assert result.spans, "trace=True must record spans via the facade"


def test_expand_is_hermetic_between_calls() -> None:
    """Definitions from one expand() must not leak into the next."""
    defining = """
    syntax exp leaky {| ( ) |} { return(`(42)); }
    int x = leaky();
    """
    assert api.expand(defining).ok
    later = api.expand("int x = leaky();")
    # 'leaky' is not defined here: plain C, the call survives as-is.
    assert "leaky()" in later.output


def test_expand_file_reads_from_disk(tmp_path) -> None:
    source = tmp_path / "prog.c"
    source.write_text("int y = 2;\n")
    result = api.expand_file(source)
    assert result.ok
    assert "int y = 2;" in result.output


def test_entry_points_keep_keyword_signatures() -> None:
    """The keyword-only parameters the docs promise."""
    for func in (api.expand, api.expand_file):
        params = inspect.signature(func).parameters
        for name in ("options", "packages", "package_sources"):
            assert name in params, (func.__name__, name)
            assert params[name].kind is inspect.Parameter.KEYWORD_ONLY

    serve_params = inspect.signature(api.serve).parameters
    for name in ("options", "config"):
        assert name in serve_params, name
    # The legacy keyword arguments (socket_path=..., port=..., ...)
    # must keep being *accepted* — via the **legacy shim.
    assert any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in serve_params.values()
    ), "serve() lost its legacy-kwargs compatibility shim"


def test_serve_config_surface() -> None:
    """ServeConfig is part of the v1 surface: frozen, defaulted,
    JSON round-trippable."""
    config = api.ServeConfig()
    assert config.shards == 1
    assert api.ServeConfig.from_json(config.to_json()) == config
    variant = config.replace(port=7777, shards=4)
    assert variant.validate() is variant
    # Frozen: assignment must fail.
    try:
        config.port = 1  # type: ignore[misc]
    except Exception:
        pass
    else:  # pragma: no cover
        raise AssertionError("ServeConfig must be immutable")


def test_cache_config_surface() -> None:
    """CacheConfig is part of the v1 surface: frozen, defaulted,
    JSON round-trippable."""
    config = api.CacheConfig()
    assert config.local_dir == ".ms2-cache"
    assert config.remote is None
    assert api.CacheConfig.from_json(config.to_json()) == config
    variant = config.replace(
        remote="tcp://build-host:7777", write_behind=16
    )
    assert variant.validate() is variant
    try:
        config.remote = "tcp://x:1"  # type: ignore[misc]
    except Exception:
        pass
    else:  # pragma: no cover
        raise AssertionError("CacheConfig must be immutable")
