"""Tests for the figures helper module itself."""

import pytest

from repro.asttypes.types import prim
from repro.figures import (
    FIGURE2_TYPES,
    FIGURE3_TYPES,
    figure2_rows,
    figure3_rows,
    parse_template_fragment,
)


class TestParseTemplateFragment:
    def test_expression_kind(self):
        tree = parse_template_fragment("exp", "$x + 1", {"x": prim("id")})
        from repro.cast import nodes

        assert isinstance(tree, nodes.BinaryOp)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            parse_template_fragment("chunk", "x", {})

    def test_bindings_are_scoped_per_call(self):
        from repro.errors import MacroTypeError

        parse_template_fragment("exp", "$a", {"a": prim("id")})
        with pytest.raises(MacroTypeError):
            parse_template_fragment("exp", "$a", {})


class TestTableShapes:
    def test_figure2_types_match_paper_order(self):
        labels = [label for label, _ in FIGURE2_TYPES]
        assert labels == [
            "init-declarator[]", "init-declarator", "declarator",
            "identifier",
        ]

    def test_figure3_types_match_paper_order(self):
        assert FIGURE3_TYPES == [
            ("decl", "decl"), ("decl", "stmt"),
            ("stmt", "stmt"), ("stmt", "decl"),
        ]

    def test_rows_are_stable_across_calls(self):
        assert figure2_rows() == figure2_rows()
        assert figure3_rows() == figure3_rows()
