"""Expansion budgets: counts, output size, deadlines, recursion.

Budget exhaustion must always surface as an
:class:`~repro.errors.ExpansionBudgetError` (fail-fast) or a
diagnostic (recovery mode) — never as a hang or a raw Python error.
"""

import pytest

from repro import MacroProcessor, Ms2Options
from repro.errors import ExpansionBudgetError, MetaInterpError

DOUBLER = (
    "syntax stmt Twice {| $$stmt::body |} "
    "{ return(`{$body; $body;}); }\n"
)


def test_max_expansions_trips():
    mp = MacroProcessor(options=Ms2Options(max_expansions=2))
    mp.load(DOUBLER)
    with pytest.raises(ExpansionBudgetError) as excinfo:
        mp.expand_to_c(
            "void f(void) { Twice {a();} Twice {b();} Twice {c();} }"
        )
    assert "budget exhausted" in str(excinfo.value)


def test_under_budget_is_silent():
    mp = MacroProcessor(options=Ms2Options(max_expansions=10))
    mp.load(DOUBLER)
    out = mp.expand_to_c("void f(void) { Twice {a();} }")
    assert out.count("a();") == 2
    assert mp.budget.expansions_used == 1


def test_max_output_nodes_trips():
    mp = MacroProcessor(options=Ms2Options(max_output_nodes=3))
    mp.load(DOUBLER)
    with pytest.raises(ExpansionBudgetError):
        mp.expand_to_c("void f(void) { Twice {a(b, c, d, e);} }")


def test_deadline_trips():
    # A zero-second allowance: the first charge starts the clock, the
    # second finds it already passed.
    mp = MacroProcessor(options=Ms2Options(deadline_s=0.0))
    mp.load(DOUBLER)
    with pytest.raises(ExpansionBudgetError) as excinfo:
        mp.expand_to_c("void f(void) { Twice {a();} Twice {b();} }")
    assert "deadline" in str(excinfo.value)


def test_budget_latches_once_exhausted():
    mp = MacroProcessor(options=Ms2Options(max_expansions=1))
    budget = mp.budget
    mp.load(DOUBLER)
    with pytest.raises(ExpansionBudgetError):
        mp.expand_to_c("void f(void) { Twice {a();} Twice {b();} }")
    assert budget.exhausted is not None
    with pytest.raises(ExpansionBudgetError):
        budget.charge_expansion()


def test_exhaustion_is_a_diagnostic_in_recover_mode():
    mp = MacroProcessor(
        options=Ms2Options(max_expansions=1, recover=True)
    )
    mp.load(DOUBLER)
    text, diags = mp.expand_to_c(
        "void f(void) { Twice {a();} Twice {b();} done(); }"
    )
    assert "done();" in text
    assert any(
        d.category == "ExpansionBudgetError" for d in diags
    )
    assert "/* <error:" in text


class TestRunawayRecursion:
    """Budget exhaustion on mutually recursive macros/meta-functions."""

    def _cyclic_macro(self, mp):
        """Hand-wire macros A and B that expand into each other —
        template-level cycles are impossible by construction (a
        macro's keyword is not in scope while its body parses), so
        the cycle is patched in at the interpreter seam."""
        from repro.cast import nodes as n

        mp.load(
            "syntax stmt A {| ( ) |} { return(`{a();}); }\n"
            "syntax stmt B {| ( ) |} { return(`{b();}); }"
        )
        defn_a = mp.table.lookup("A")
        defn_b = mp.table.lookup("B")
        # The cycle is injected by stubbing call_macro, so both
        # definitions must take the interpreter path, not their
        # compiled bodies.
        defn_a.compiled_body = False
        defn_b.compiled_body = False

        def fake_call(definition, bindings):
            other = defn_b if definition is defn_a else defn_a
            return n.MacroInvocation(other.name, [], other)

        mp.expander.interpreter.call_macro = fake_call
        return n.MacroInvocation("A", [], defn_a)

    def test_mutually_recursive_macros_hit_expansion_budget(self):
        mp = MacroProcessor(
            options=Ms2Options(cache=False, max_expansions=50)
        )
        inv = self._cyclic_macro(mp)
        with pytest.raises(ExpansionBudgetError):
            mp.expander.expand_invocation(inv)
        assert mp.budget.expansions_used <= 51

    def test_mutually_recursive_meta_functions_stay_ms2_errors(self, mp):
        # odd() is first defined with a dummy body so even() can be
        # checked, then redefined in terms of even(): the closures
        # resolve names at call time, so the recursion is genuinely
        # mutual — and unbounded, so a resource error must surface as
        # MetaInterpError (fuel or recursion guard), never as a raw
        # RecursionError.
        mp.load(
            "@exp odd(int n) { return(`(0)); }\n"
            "@exp even(int n) { return(odd(n)); }\n"
            "@exp odd(int n) { return(even(n)); }\n"
            "syntax exp go {| ( ) |} { return(even(0)); }"
        )
        with pytest.raises(MetaInterpError):
            mp.expand_to_c("int x = go();")

    def test_bounded_mutual_meta_recursion_works(self, mp):
        mp.load(
            "@exp odd(int n) { return(`(0)); }\n"
            "@exp even(int n) {"
            "  if (n == 0) return(`(1)); return(odd(n - 1)); }\n"
            "@exp odd(int n) {"
            "  if (n == 0) return(`(0)); return(even(n - 1)); }\n"
            "syntax exp par {| ( $$exp::e ) |} {"
            "  return(even(eval_const(e))); }"
        )
        out = mp.expand_to_c("int x = par(4);")
        assert "x = 1" in out
