"""Direct unit tests for the C symbol table (repro.semantics)."""

import pytest

from repro.cast import ctypes, decls
from repro.parser.core import Parser
from repro.semantics import CBinding, CScope, type_spec_of
from tests.conftest import parse_c


def declaration(source: str) -> decls.Declaration:
    return parse_c(source).items[0]


class TestCScope:
    def test_record_and_lookup(self):
        scope = CScope()
        scope.record_declaration(declaration("long total;"))
        binding = scope.lookup("total")
        assert binding is not None
        assert binding.specs.type_spec.names == ["long"]

    def test_multiple_declarators(self):
        scope = CScope()
        scope.record_declaration(declaration("int a, *b, c[4];"))
        assert scope.lookup("a") is not None
        assert scope.lookup("b") is not None
        assert scope.lookup("c") is not None

    def test_scalar_detection(self):
        scope = CScope()
        scope.record_declaration(declaration("int a, *b;"))
        assert scope.lookup("a").is_scalar()
        assert not scope.lookup("b").is_scalar()

    def test_chained_lookup_and_shadowing(self):
        outer = CScope()
        outer.record_declaration(declaration("int x;"))
        inner = outer.child()
        inner.record_declaration(declaration("char x;"))
        assert inner.lookup("x").specs.type_spec.names == ["char"]
        assert outer.lookup("x").specs.type_spec.names == ["int"]

    def test_unknown_name(self):
        assert CScope().lookup("ghost") is None

    def test_record_parameters(self):
        unit = parse_c("int f(int a, char *b);")
        declarator = unit.items[0].init_declarators[0].declarator
        scope = CScope()
        scope.record_parameters(declarator)
        assert scope.lookup("a") is not None
        assert scope.lookup("b") is not None


class TestTypeSpecOf:
    def test_returns_clone(self):
        scope = CScope()
        scope.record_declaration(declaration("long n;"))
        first = type_spec_of(scope, "n")
        second = type_spec_of(scope, "n")
        assert first == second
        assert first is not second  # safe to splice into output

    def test_unknown_is_none(self):
        assert type_spec_of(CScope(), "ghost") is None

    def test_typedef_name_type(self):
        unit = parse_c("typedef int T; T value;")
        scope = CScope()
        scope.record_declaration(unit.items[1])
        ts = type_spec_of(scope, "value")
        assert isinstance(ts, ctypes.TypedefNameType)


class TestParserIntegration:
    def test_parser_scope_tracks_top_level(self):
        parser = Parser("int a;\nlong b;\n")
        parser.parse_program()
        assert parser.c_scope.lookup("a") is not None
        assert parser.c_scope.lookup("b") is not None

    def test_function_locals_do_not_leak(self):
        parser = Parser("void f(void) { int local; local = 1; }")
        parser.parse_program()
        assert parser.c_scope.lookup("local") is None

    def test_meta_locals_not_recorded(self):
        # Meta-variables inside macro bodies are not C declarations.
        from repro import MacroProcessor

        mp = MacroProcessor()
        mp.load(
            "syntax stmt m {| ( ) |} { @id t = gensym(); return(`{f();}); }"
        )
        assert mp._parser.c_scope.lookup("t") is None
