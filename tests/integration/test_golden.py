"""Golden-file snapshot tests.

Each ``tests/golden/<name>.input.c`` expands to exactly
``<name>.expected.c``.  These pin end-to-end behaviour (including
printer layout and gensym numbering, which are deterministic) so that
refactors can't silently change what users see.

To regenerate after an *intentional* change::

    python tests/integration/test_golden.py --regenerate
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro import MacroProcessor
from repro.packages import load_standard, semantic, statemachine

GOLDEN_DIR = Path(__file__).parent.parent / "golden"

#: name -> loader installing the packages that case needs.
LOADERS = {
    "paper_foo": load_standard,
    "dsl_and_serial": lambda mp: (
        statemachine.register(mp), load_standard(mp)
    ),
    "semantic": semantic.register,
}


def expand_case(name: str) -> tuple[str, str]:
    source = (GOLDEN_DIR / f"{name}.input.c").read_text()
    expected = (GOLDEN_DIR / f"{name}.expected.c").read_text()
    mp = MacroProcessor()
    LOADERS[name](mp)
    return mp.expand_to_c(source), expected


@pytest.mark.parametrize("name", sorted(LOADERS))
def test_golden(name):
    actual, expected = expand_case(name)
    assert actual == expected, (
        f"golden case {name!r} drifted; if intentional, regenerate with "
        f"`python {__file__} --regenerate`"
    )


@pytest.mark.parametrize("name", sorted(LOADERS))
def test_golden_deterministic(name):
    first, _ = expand_case(name)
    second, _ = expand_case(name)
    assert first == second


def _regenerate() -> None:
    for name, loader in LOADERS.items():
        source = (GOLDEN_DIR / f"{name}.input.c").read_text()
        mp = MacroProcessor()
        loader(mp)
        (GOLDEN_DIR / f"{name}.expected.c").write_text(
            mp.expand_to_c(source)
        )
        print(f"regenerated {name}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
