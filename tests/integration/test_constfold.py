"""Tests for the constant-expression evaluator and eval_const builtin."""

import pytest

from repro import MacroProcessor
from repro.constfold import NotConstant, enum_constants, eval_const
from repro.errors import ExpansionError
from tests.conftest import parse_c, parse_expr


def fold(source: str, env=None) -> int:
    return eval_const(parse_expr(source), env)


class TestArithmetic:
    def test_literals(self):
        assert fold("42") == 42
        assert fold("'A'") == 65

    def test_basic_ops(self):
        assert fold("2 + 3 * 4") == 14
        assert fold("(2 + 3) * 4") == 20
        assert fold("1 << 10") == 1024

    def test_c_division(self):
        assert fold("-7 / 2") == -3
        assert fold("-7 % 2") == -1

    def test_division_by_zero_not_constant(self):
        with pytest.raises(NotConstant):
            fold("1 / 0")

    def test_unary(self):
        assert fold("-(3)") == -3
        assert fold("~0") == -1
        assert fold("!5") == 0

    def test_comparisons(self):
        assert fold("3 < 4") == 1
        assert fold("3 == 4") == 0

    def test_short_circuit(self):
        assert fold("0 && (1 / 0)") == 0
        assert fold("1 || (1 / 0)") == 1

    def test_conditional(self):
        assert fold("1 ? 10 : 20") == 10
        assert fold("0 ? 10 : 20") == 20

    def test_cast(self):
        assert fold("(long) 5 + 1") == 6

    def test_identifiers_from_env(self):
        assert fold("MAX - 1", {"MAX": 100}) == 99

    def test_unknown_identifier_not_constant(self):
        with pytest.raises(NotConstant):
            fold("unknown + 1")

    def test_call_not_constant(self):
        with pytest.raises(NotConstant):
            fold("f(1)")


class TestEnumConstants:
    def enum_of(self, source: str):
        unit = parse_c(source)
        return unit.items[0].specs.type_spec

    def test_implicit_values(self):
        values = enum_constants(self.enum_of("enum e {a, b, c};"))
        assert values == {"a": 0, "b": 1, "c": 2}

    def test_explicit_values(self):
        values = enum_constants(
            self.enum_of("enum e {a = 5, b, c = 1 << 4, d};")
        )
        assert values == {"a": 5, "b": 6, "c": 16, "d": 17}

    def test_values_reference_earlier_enumerators(self):
        values = enum_constants(
            self.enum_of("enum e {base = 3, twice = base * 2};")
        )
        assert values["twice"] == 6


class TestEvalConstBuiltin:
    def test_macro_accepts_constant_expressions(self, mp):
        mp.load(
            "syntax stmt repeat {| ( $$exp::n ) $$stmt::body |}"
            "{ int i; int count; @stmt out[];"
            "  count = eval_const(n); out = list();"
            "  for (i = 0; i < count; i++) out = cons(body, out);"
            "  return(`{{$out}}); }"
        )
        unit = mp.expand_to_ast("void f(void) { repeat (2 * 3) tick(); }")
        block = unit.items[0].body.stmts[0]
        assert len(block.stmts) == 6

    def test_non_constant_is_expansion_error(self, mp):
        mp.load(
            "syntax stmt repeat {| ( $$exp::n ) $$stmt::body |}"
            "{ int count; count = eval_const(n); return(body); }"
        )
        with pytest.raises(ExpansionError) as exc:
            mp.expand_to_c("void f(void) { repeat (runtime()) tick(); }")
        assert "constant" in str(exc.value)

    def test_eval_const_typed_as_int(self, mp):
        # The static checker knows eval_const : exp -> int.
        from repro.errors import MacroTypeError

        with pytest.raises(MacroTypeError):
            mp.load(
                "syntax stmt bad {| ( $$exp::n ) |}"
                "{ @stmt s = eval_const(n); return(s); }"
            )
