"""Importable corpus constants shared by the driver tests.

Kept out of ``conftest.py`` so multiprocessing children (forked by the
race tests) and the benchmark harness can import them directly.
"""

from __future__ import annotations

#: A macro package loaded as a shared preamble (package_sources).
SHARED_MACROS = """
syntax stmt Twice {| $$stmt::body |}
{
  return(`{ $body; $body; });
}
"""

#: Uses the shared ``Twice`` macro only.
PROGRAM_USES_SHARED = """
void pulse(void)
{
    Twice { step(); }
}
"""

#: Defines its own macro *and* uses the shared one — the private
#: definition must not leak into sibling translation units.
PROGRAM_PRIVATE_MACRO = """
syntax stmt Guarded {| $$stmt::body |}
{
  return(`{ if (enabled) { $body; } });
}

void tick(void)
{
    Guarded { Twice { advance(); } }
}
"""

#: Plain C, no macros at all.
PROGRAM_PLAIN = """
int add(int a, int b)
{
    return a + b;
}
"""

#: Unparseable garbage: an Ms2Error in fail-fast mode.
PROGRAM_BROKEN = """
void broken( {
"""


def synthetic_sources(count: int) -> list[tuple[str, str]]:
    """``count`` distinct translation units over the shared macros."""
    sources = []
    for i in range(count):
        sources.append(
            (
                f"unit_{i:03d}.c",
                f"/* translation unit {i} */\n"
                f"void pulse_{i}(void)\n"
                "{\n"
                f"    Twice {{ step({i}); }}\n"
                "}\n",
            )
        )
    return sources
