"""BuildSession: incremental rebuilds, parallel parity, fault cases.

The two load-bearing properties:

- **parity** — a batch build (any ``jobs``, cached or cold) produces
  byte-identical output to expanding each file alone with
  ``expand_to_c``;
- **robustness** — bad files, racing invocations and a cache
  directory yanked mid-build degrade a run, never break it.
"""

from __future__ import annotations

import multiprocessing
import shutil
from pathlib import Path

import pytest

from repro.driver import BuildSession, resolve_inputs, write_outputs
from repro.options import Ms2Options

from tests.driver.corpus import (
    PROGRAM_BROKEN,
    PROGRAM_USES_SHARED,
    SHARED_MACROS,
    synthetic_sources,
)
from tests.fuzz.fuzzer import load_corpus, make_processor


def session(cache_dir, **kwargs) -> BuildSession:
    kwargs.setdefault("package_sources", [("shared.ms2", SHARED_MACROS)])
    return BuildSession(cache=cache_dir, **kwargs)


# ---------------------------------------------------------------------------
# Input resolution
# ---------------------------------------------------------------------------


def test_resolve_inputs_directory(corpus_dir: Path) -> None:
    files = resolve_inputs([corpus_dir])
    assert [p.name for p in files] == [
        "a_shared.c", "b_private.ms2", "c_plain.c",
    ]


def test_resolve_inputs_deduplicates(corpus_dir: Path) -> None:
    one = corpus_dir / "a_shared.c"
    files = resolve_inputs([one, corpus_dir, one])
    assert len(files) == 3
    assert files[0] == one


def test_resolve_inputs_errors(tmp_path: Path) -> None:
    with pytest.raises(FileNotFoundError):
        resolve_inputs([tmp_path / "nope.c"])
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(FileNotFoundError):
        resolve_inputs([empty])


# ---------------------------------------------------------------------------
# Cold / warm / invalidation
# ---------------------------------------------------------------------------


def test_cold_then_warm(corpus_dir: Path, cache_dir: Path) -> None:
    cold = session(cache_dir).build([corpus_dir])
    assert cold.ok
    assert cold.files_expanded == 3
    assert cold.files_from_cache == 0

    warm = session(cache_dir).build([corpus_dir])
    assert warm.ok
    assert warm.files_expanded == 0
    assert warm.files_from_cache == 3
    assert warm.cache["hits"] == 3
    assert [r.output for r in warm.results] == [
        r.output for r in cold.results
    ]
    assert all(r.from_cache for r in warm.results)


def test_touched_file_rebuilds_alone(
    corpus_dir: Path, cache_dir: Path
) -> None:
    session(cache_dir).build([corpus_dir])
    target = corpus_dir / "c_plain.c"
    target.write_text(target.read_text() + "\nint touched;\n")
    report = session(cache_dir).build([corpus_dir])
    assert report.files_expanded == 1
    assert report.files_from_cache == 2
    rebuilt = [r for r in report.results if not r.from_cache]
    assert rebuilt[0].path.endswith("c_plain.c")
    assert "touched" in rebuilt[0].output


def test_options_change_invalidates(
    corpus_dir: Path, cache_dir: Path
) -> None:
    session(cache_dir).build([corpus_dir])
    report = session(
        cache_dir, options=Ms2Options(annotate=True)
    ).build([corpus_dir])
    assert report.files_from_cache == 0
    assert report.files_expanded == 3


def test_observability_options_do_not_invalidate(
    corpus_dir: Path, cache_dir: Path
) -> None:
    """trace/profile never change output, so they share cache keys."""
    session(cache_dir).build([corpus_dir])
    report = session(
        cache_dir, options=Ms2Options(profile=True)
    ).build([corpus_dir])
    assert report.files_from_cache == 3


def test_macro_change_invalidates(
    corpus_dir: Path, cache_dir: Path
) -> None:
    session(cache_dir).build([corpus_dir])
    changed = SHARED_MACROS.replace("$body; $body;", "$body;")
    report = session(
        cache_dir, package_sources=[("shared.ms2", changed)]
    ).build([corpus_dir])
    assert report.files_from_cache == 0


def test_no_incremental_rebuilds_but_stores(
    corpus_dir: Path, cache_dir: Path
) -> None:
    session(cache_dir, incremental=False).build([corpus_dir])
    again = session(cache_dir, incremental=False).build([corpus_dir])
    assert again.files_expanded == 3
    assert again.files_from_cache == 0
    # ...but the snapshots it stored serve a later incremental run.
    warm = session(cache_dir).build([corpus_dir])
    assert warm.files_from_cache == 3


def test_disabled_cache(corpus_dir: Path, cache_dir: Path) -> None:
    report = session(None).build([corpus_dir])
    assert report.ok
    assert report.files_expanded == 3
    assert not cache_dir.exists()


# ---------------------------------------------------------------------------
# Failure modes
# ---------------------------------------------------------------------------


def test_broken_file_fails_alone(
    corpus_dir: Path, cache_dir: Path
) -> None:
    (corpus_dir / "d_broken.c").write_text(PROGRAM_BROKEN)
    report = session(cache_dir).build([corpus_dir])
    assert not report.ok
    assert report.files_failed == 1
    good = [r for r in report.results if r.status == "ok"]
    assert len(good) == 3
    # Errors are never cached: the warm run retries the bad file.
    warm = session(cache_dir).build([corpus_dir])
    assert warm.files_from_cache == 3
    assert warm.files_failed == 1


def test_recovered_diagnostics_survive_the_cache(
    corpus_dir: Path, cache_dir: Path
) -> None:
    (corpus_dir / "d_broken.c").write_text(PROGRAM_BROKEN)
    options = Ms2Options(recover=True)
    cold = session(cache_dir, options=options).build([corpus_dir])
    assert not cold.ok  # error diagnostics recorded, not raised
    warm = session(cache_dir, options=options).build([corpus_dir])
    assert warm.files_from_cache == 4
    assert not warm.ok, "cached diagnostics must still fail the build"


def test_cache_dir_deleted_mid_build(
    corpus_dir: Path, cache_dir: Path, monkeypatch: pytest.MonkeyPatch
) -> None:
    """`rm -rf .ms2-cache` racing a build costs reuse, nothing else."""
    sess = session(cache_dir)
    real_store = sess.cache.store

    def sabotaged_store(key, payload):
        shutil.rmtree(cache_dir, ignore_errors=True)
        return real_store(key, payload)

    monkeypatch.setattr(sess.cache, "store", sabotaged_store)
    report = sess.build([corpus_dir])
    assert report.ok
    assert report.files_expanded == 3
    # The last store recreated the directory; later runs still work.
    assert session(cache_dir).build([corpus_dir]).ok


def test_identical_content_at_two_paths_is_not_conflated(
    cache_dir: Path,
) -> None:
    """With ``annotate`` the path is embedded in the output (#line,
    provenance comments), so a snapshot built for one path must never
    replay for identical content at another path."""
    options = Ms2Options(annotate=True)
    cold = session(cache_dir, options=options).build_sources(
        [("a/unit.c", PROGRAM_USES_SHARED)]
    )
    assert '"a/unit.c"' in cold.results[0].output
    other = session(cache_dir, options=options).build_sources(
        [("b/unit.c", PROGRAM_USES_SHARED)]
    )
    assert other.files_from_cache == 0
    assert '"b/unit.c"' in other.results[0].output
    assert "a/unit.c" not in other.results[0].output
    # The original path still warm-hits its own snapshot.
    warm = session(cache_dir, options=options).build_sources(
        [("a/unit.c", PROGRAM_USES_SHARED)]
    )
    assert warm.files_from_cache == 1
    assert warm.results[0].output == cold.results[0].output


def test_snapshot_with_mismatched_path_is_discarded(
    cache_dir: Path,
) -> None:
    """A snapshot whose stored path disagrees with the file being
    built (copied/forged entry) is evicted, never replayed."""
    sess = session(cache_dir)
    key = sess.file_key("b.c", PROGRAM_USES_SHARED)
    assert sess.cache.store(
        key, {"path": "a.c", "output": "void wrong(void);\n"}
    )
    report = sess.build_sources([("b.c", PROGRAM_USES_SHARED)])
    assert report.files_from_cache == 0
    assert report.files_expanded == 1
    assert sess.cache.failures == 1
    assert "wrong" not in report.results[0].output


def test_budget_exhausted_result_is_never_cached(
    cache_dir: Path,
) -> None:
    """deadline_s makes budget exhaustion wall-clock nondeterministic,
    so truncated recover-mode output must not be pinned by the cache —
    every run retries the file."""
    options = Ms2Options(recover=True, max_expansions=1)
    source = "void f(void) { Twice { a(); } Twice { b(); } }\n"
    first = session(cache_dir, options=options).build_sources(
        [("f.c", source)]
    )
    assert first.results[0].status == "ok"
    assert any(
        d.get("category") == "ExpansionBudgetError"
        for d in first.results[0].diagnostics
    )
    second = session(cache_dir, options=options).build_sources(
        [("f.c", source)]
    )
    assert second.files_from_cache == 0
    assert second.files_expanded == 1


# ---------------------------------------------------------------------------
# Parallelism and parity
# ---------------------------------------------------------------------------


def test_parallel_matches_sequential(cache_dir: Path) -> None:
    sources = synthetic_sources(6)
    seq = session(None, jobs=1).build_sources(sources)
    par = session(None, jobs=4).build_sources(sources)
    assert par.ok
    assert [r.path for r in par.results] == [r.path for r in seq.results]
    assert [r.output for r in par.results] == [
        r.output for r in seq.results
    ]


def test_parallel_warm_cache(cache_dir: Path) -> None:
    sources = synthetic_sources(6)
    cold = session(cache_dir, jobs=4).build_sources(sources)
    assert cold.files_expanded == 6
    warm = session(cache_dir, jobs=4).build_sources(sources)
    assert warm.files_from_cache == 6
    assert [r.output for r in warm.results] == [
        r.output for r in cold.results
    ]


def test_driver_parity_with_expand_to_c_across_examples() -> None:
    """Every example program builds byte-identically through the
    driver and through a lone ``expand_to_c`` call."""
    checked = 0
    for name, program, loaders in load_corpus():
        expected = make_processor(loaders).expand_to_c(program, name)
        package_names = tuple(
            item.__name__.rsplit(".", 1)[1]
            for item in loaders
            if not isinstance(item, str)
        )
        package_sources = tuple(
            (f"{name}_{i}.ms2", item)
            for i, item in enumerate(loaders)
            if isinstance(item, str)
        )
        sess = BuildSession(
            package_names=package_names,
            package_sources=package_sources,
            cache=None,
        )
        report = sess.build_sources([(name, program)])
        assert report.ok, f"{name}: {report.results[0].error}"
        assert report.results[0].output == expected, name
        checked += 1
    assert checked >= 5


def test_per_file_isolation(cache_dir: Path) -> None:
    """A macro defined inside one translation unit is invisible to
    its siblings — building them together equals building them apart."""
    defines = (
        "syntax stmt Solo {| $$stmt::body |}\n"
        "{ return(`{ before(); $body; }); }\n"
        "void a(void) { Solo { work(); } }\n"
    )
    uses_undefined = "void b(void) { Solo(); }\n"
    report = session(None).build_sources(
        [("defines.c", defines), ("plain.c", uses_undefined)]
    )
    assert report.ok
    alone = session(None).build_sources([("plain.c", uses_undefined)])
    assert report.results[1].output == alone.results[0].output


# ---------------------------------------------------------------------------
# Two invocations racing on one cache directory
# ---------------------------------------------------------------------------


def _race_worker(src_dir: str, cache_root: str, queue) -> None:
    from repro.driver import BuildSession as Session

    sess = Session(
        package_sources=[("shared.ms2", SHARED_MACROS)],
        cache=cache_root,
    )
    report = sess.build([src_dir])
    queue.put((report.ok, [r.output for r in report.results]))


def test_racing_invocations_share_a_cache_dir(
    corpus_dir: Path, cache_dir: Path
) -> None:
    queue: multiprocessing.Queue = multiprocessing.Queue()
    procs = [
        multiprocessing.Process(
            target=_race_worker,
            args=(str(corpus_dir), str(cache_dir), queue),
        )
        for _ in range(2)
    ]
    for proc in procs:
        proc.start()
    outcomes = [queue.get(timeout=120) for _ in procs]
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0
    assert all(ok for ok, _ in outcomes)
    assert outcomes[0][1] == outcomes[1][1], "racing builds must agree"
    # And the directory they fought over is a valid warm cache now.
    warm = session(cache_dir).build([corpus_dir])
    assert warm.files_from_cache == 3


# ---------------------------------------------------------------------------
# Outputs on disk
# ---------------------------------------------------------------------------


def test_write_outputs(corpus_dir: Path, tmp_path: Path) -> None:
    report = session(None).build([corpus_dir])
    out_dir = tmp_path / "out"
    written = write_outputs(report, out_dir)
    assert sorted(p.name for p in written) == [
        "a_shared.c", "b_private.c", "c_plain.c",
    ]
    assert (out_dir / "a_shared.c").read_text() == report.results[0].output


def test_write_outputs_mirrors_dirs_on_stem_collision(
    tmp_path: Path,
) -> None:
    """``a/util.c`` and ``b/util.c`` must both survive: colliding
    stems mirror the input tree below the common ancestor instead of
    silently overwriting each other."""
    for sub, body in (("a", "int a;\n"), ("b", "int b;\n")):
        (tmp_path / "src" / sub).mkdir(parents=True)
        (tmp_path / "src" / sub / "util.c").write_text(body)
    report = session(None).build([tmp_path / "src"])
    out_dir = tmp_path / "out"
    written = write_outputs(report, out_dir)
    assert sorted(p.relative_to(out_dir) for p in written) == [
        Path("a/util.c"), Path("b/util.c"),
    ]
    assert "int a;" in (out_dir / "a" / "util.c").read_text()
    assert "int b;" in (out_dir / "b" / "util.c").read_text()


def test_write_outputs_rejects_unresolvable_collision(
    tmp_path: Path,
) -> None:
    """``util.c`` next to ``util.ms2`` collides even after mirroring
    (both land as util.c) — that's an error, not an overwrite."""
    src = tmp_path / "src"
    src.mkdir()
    (src / "util.c").write_text("int c;\n")
    (src / "util.ms2").write_text("int m;\n")
    report = session(None).build([src])
    with pytest.raises(ValueError, match="collision"):
        write_outputs(report, tmp_path / "out")


def test_concurrent_sessions_do_not_share_worker_state() -> None:
    """Two in-process (jobs=1) sessions with different macro contexts
    built from sibling threads must each use their own context — the
    sequential path takes no detour through process-global state."""
    import threading

    variants = {
        "twice": SHARED_MACROS,
        "thrice": SHARED_MACROS.replace(
            "$body; $body;", "$body; $body; $body;"
        ),
    }
    sources = synthetic_sources(4)
    expected = {
        name: [
            r.output
            for r in BuildSession(
                package_sources=[("shared.ms2", macros)], cache=None
            ).build_sources(sources).results
        ]
        for name, macros in variants.items()
    }
    assert expected["twice"] != expected["thrice"]

    results: dict[str, list[str]] = {}
    barrier = threading.Barrier(len(variants))

    def run(name: str, macros: str) -> None:
        barrier.wait()
        report = BuildSession(
            package_sources=[("shared.ms2", macros)], cache=None
        ).build_sources(sources)
        results[name] = [r.output for r in report.results]

    threads = [
        threading.Thread(target=run, args=item)
        for item in variants.items()
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert results == expected
