"""Tests for the parallel batch-build driver (:mod:`repro.driver`)."""
