"""PersistentCache: roundtrips plus the adversarial fallback matrix.

The contract under test: **no state of a snapshot file may ever
surface as an exception or as wrong data** — corrupt, truncated,
stale-versioned, mis-keyed and malformed snapshots all read as a miss,
are evicted, and bump the ``failures`` counter.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.driver.diskcache import PersistentCache
from repro.macros.cache import SNAPSHOT_HEADER, frame_snapshot

KEY = "ab" + "0" * 62


def stored(cache_dir: Path, **extra) -> tuple[PersistentCache, Path]:
    """A cache with one good snapshot under KEY."""
    cache = PersistentCache(cache_dir)
    assert cache.store(KEY, {"output": "int x;\n", **extra})
    return cache, cache.path_for(KEY)


def test_roundtrip(tmp_path: Path) -> None:
    cache, path = stored(tmp_path, diagnostics=[], stats={"files": 1})
    assert path.exists()
    payload = cache.load(KEY)
    assert payload is not None
    assert payload["output"] == "int x;\n"
    assert payload["stats"] == {"files": 1}
    assert payload["key"] == KEY
    counters = cache.counters()
    assert (counters["hits"], counters["misses"], counters["failures"]) == (
        1, 0, 0,
    )
    assert counters["loads"] == 1 and counters["stores"] == 1
    assert counters["load_ms"] >= 0.0 and counters["store_ms"] > 0.0


def test_missing_entry_is_a_plain_miss(tmp_path: Path) -> None:
    cache = PersistentCache(tmp_path)
    assert cache.load(KEY) is None
    counters = cache.counters()
    assert (counters["hits"], counters["misses"], counters["failures"]) == (
        0, 1, 0,
    )
    assert counters["evictions"] == 0


def test_atomic_overwrite(tmp_path: Path) -> None:
    cache, _ = stored(tmp_path)
    assert cache.store(KEY, {"output": "int y;\n"})
    assert cache.load(KEY)["output"] == "int y;\n"
    # No leftover temp files from either write.
    assert not list(tmp_path.rglob("*.tmp"))


def test_store_recreates_deleted_cache_dir(tmp_path: Path) -> None:
    cache, path = stored(tmp_path)
    # Simulate `rm -rf .ms2-cache` between store and the next store.
    shutil.rmtree(path.parent)
    assert cache.store(KEY, {"output": "int z;\n"})
    assert cache.load(KEY)["output"] == "int z;\n"


def test_store_failure_is_absorbed(tmp_path: Path) -> None:
    """An unwritable root (a *file* where the dir should be) makes
    store return False rather than raise."""
    root = tmp_path / "cache"
    root.write_text("not a directory")
    cache = PersistentCache(root)
    assert cache.store(KEY, {"output": "int x;\n"}) is False


def test_unserializable_payload_is_absorbed(tmp_path: Path) -> None:
    cache = PersistentCache(tmp_path)
    assert cache.store(KEY, {"output": "x", "bad": lambda: None}) is False


def test_snapshots_never_contain_pickle(tmp_path: Path) -> None:
    """Loading a snapshot must not be able to execute code: the body
    after header + digest is plain JSON, nothing else."""
    cache, path = stored(tmp_path, diagnostics=[{"severity": "note"}])
    from repro.macros.cache import unframe_snapshot

    body = unframe_snapshot(path.read_bytes())[8:]
    payload = json.loads(body.decode("utf-8"))  # raises if not JSON
    assert payload["output"] == "int x;\n"


def test_entries_and_clear(tmp_path: Path) -> None:
    cache = PersistentCache(tmp_path)
    other = "cd" + "1" * 62
    cache.store(KEY, {"output": "a"})
    cache.store(other, {"output": "b"})
    assert len(cache.entries()) == 2
    assert cache.clear() == 2
    assert cache.entries() == []
    assert cache.load(KEY) is None


# ---------------------------------------------------------------------------
# The adversarial matrix: every damaged form reads as miss + eviction.
# ---------------------------------------------------------------------------


def _write_raw(path: Path, blob: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(blob)


def _body(payload) -> bytes:
    return json.dumps(payload).encode("utf-8")


def _framed_with_digest(body: bytes) -> bytes:
    import hashlib

    return frame_snapshot(hashlib.sha256(body).digest()[:8] + body)


DAMAGE = {
    "empty-file": lambda good: b"",
    "truncated-header": lambda good: good[:3],
    "truncated-body": lambda good: good[: len(good) // 2],
    "garbled-header": lambda good: b"XXXX" + good[4:],
    "stale-version": lambda good: (
        SNAPSHOT_HEADER[:-1]
        + bytes([SNAPSHOT_HEADER[-1] + 1])
        + good[len(SNAPSHOT_HEADER):]
    ),
    "bitflip-in-payload": lambda good: (
        good[:-10] + bytes([good[-10] ^ 0x40]) + good[-9:]
    ),
    "garbage-body": lambda good: _framed_with_digest(b"not { json"),
    "pickled-body": lambda good: _framed_with_digest(
        b"\x80\x05\x95\x0e\x00\x00\x00"  # a pickle is not JSON
    ),
    "payload-not-a-dict": lambda good: _framed_with_digest(
        _body(["wrong", "shape"])
    ),
    "payload-missing-keys": lambda good: _framed_with_digest(
        _body({"output": "x"})  # no "key"
    ),
    "output-not-a-string": lambda good: _framed_with_digest(
        _body({"key": KEY, "output": 42})
    ),
}


@pytest.mark.parametrize("damage", sorted(DAMAGE))
def test_damaged_snapshot_is_evicted(tmp_path: Path, damage: str) -> None:
    cache, path = stored(tmp_path)
    _write_raw(path, DAMAGE[damage](path.read_bytes()))
    assert cache.load(KEY) is None
    assert not path.exists(), "damaged snapshot must be evicted"
    assert cache.failures == 1
    # The entry can be rebuilt in place afterwards.
    assert cache.store(KEY, {"output": "rebuilt"})
    assert cache.load(KEY)["output"] == "rebuilt"


def test_key_mismatch_is_rejected(tmp_path: Path) -> None:
    """A snapshot copied/renamed to another key's path is unusable —
    its embedded key disagrees with its address."""
    cache, path = stored(tmp_path)
    other = "ef" + "2" * 62
    _write_raw(cache.path_for(other), path.read_bytes())
    assert cache.load(other) is None
    assert cache.failures == 1
    assert cache.load(KEY)["output"] == "int x;\n"  # original intact
