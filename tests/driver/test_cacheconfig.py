"""CacheConfig: defaults, wire format, validation, the legacy-kwargs
shim, and the ``BuildSession(cache=...)`` resolution rules.

CacheConfig is the single source of cache defaults — the CLI flags,
the library behaviour and the JSON policy a build farm ships to its
runners all start from ``CacheConfig()`` — so this suite pins the
default values, the round-trip, and every spelling ``cache=`` takes.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.driver import (
    BuildSession,
    CacheConfig,
    PersistentCache,
    RemoteCacheBackend,
    TieredBackend,
)
from repro.driver.cacheconfig import (
    CACHE_FIELDS,
    DEFAULT_REMOTE_TIMEOUT_S,
    DEFAULT_WRITE_BEHIND,
)
from repro.options import Ms2DeprecationWarning


# ---------------------------------------------------------------------------
# Defaults and the value contract
# ---------------------------------------------------------------------------


def test_defaults_are_todays_behaviour() -> None:
    config = CacheConfig()
    assert config.local_dir == ".ms2-cache"
    assert config.remote is None
    assert config.write_behind == DEFAULT_WRITE_BEHIND
    assert config.remote_timeout_s == DEFAULT_REMOTE_TIMEOUT_S
    assert config.fail_open is True
    assert config.enabled


def test_frozen_and_comparable() -> None:
    a = CacheConfig(remote="tcp://host:7777")
    b = CacheConfig(remote="tcp://host:7777")
    assert a == b
    with pytest.raises(Exception):
        a.remote = "tcp://other:1"  # type: ignore[misc]


def test_replace_derives_variants() -> None:
    base = CacheConfig()
    variant = base.replace(remote="unix:///run/ms2.sock")
    assert variant.remote == "unix:///run/ms2.sock"
    assert variant.local_dir == base.local_dir
    assert base.remote is None  # original untouched


def test_fields_tuple_matches_declaration() -> None:
    assert CACHE_FIELDS == (
        "local_dir", "remote", "write_behind",
        "remote_timeout_s", "fail_open",
    )


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------


def test_json_round_trip() -> None:
    config = CacheConfig(
        local_dir="/tmp/c",
        remote="tcp://host:7777",
        write_behind=8,
        remote_timeout_s=0.5,
        fail_open=False,
    )
    assert CacheConfig.from_json(config.to_json()) == config


def test_from_json_ignores_unknown_keys() -> None:
    payload = CacheConfig().to_json()
    payload["added_in_a_future_version"] = True
    assert CacheConfig.from_json(payload) == CacheConfig()


def test_from_json_none_is_defaults() -> None:
    assert CacheConfig.from_json(None) == CacheConfig()


@pytest.mark.parametrize(
    "field, bad",
    [
        ("local_dir", 7),
        ("remote", ["tcp://x:1"]),
        ("write_behind", "many"),
        ("write_behind", True),
        ("remote_timeout_s", "fast"),
        ("fail_open", "yes"),
    ],
)
def test_from_json_rejects_wrong_types(field: str, bad: object) -> None:
    payload = CacheConfig().to_json()
    payload[field] = bad
    with pytest.raises(ValueError, match=field):
        CacheConfig.from_json(payload)


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def test_validate_returns_self() -> None:
    config = CacheConfig(remote="tcp://host:7777")
    assert config.validate() is config


@pytest.mark.parametrize(
    "kwargs, match",
    [
        ({"write_behind": -1}, "write_behind"),
        ({"remote_timeout_s": 0.0}, "remote_timeout_s"),
        ({"remote": "tcp://no-port"}, "tcp"),
    ],
)
def test_validate_rejects_impossible_configs(kwargs, match) -> None:
    with pytest.raises(ValueError, match=match):
        CacheConfig(**kwargs).validate()


# ---------------------------------------------------------------------------
# The backend factory
# ---------------------------------------------------------------------------


def test_build_backend_local_only(tmp_path: Path) -> None:
    backend = CacheConfig(local_dir=str(tmp_path)).build_backend()
    assert isinstance(backend, PersistentCache)


def test_build_backend_remote_only() -> None:
    backend = CacheConfig(
        local_dir=None, remote="tcp://host:7777"
    ).build_backend()
    assert isinstance(backend, RemoteCacheBackend)
    assert backend.timeout_s == DEFAULT_REMOTE_TIMEOUT_S


def test_build_backend_tiered(tmp_path: Path) -> None:
    backend = CacheConfig(
        local_dir=str(tmp_path),
        remote="tcp://host:7777",
        write_behind=4,
    ).build_backend()
    assert isinstance(backend, TieredBackend)
    assert backend.write_behind == 4
    assert isinstance(backend.local, PersistentCache)


def test_build_backend_disabled() -> None:
    assert CacheConfig(local_dir=None).build_backend() is None
    assert not CacheConfig(local_dir=None).enabled


# ---------------------------------------------------------------------------
# Legacy-kwargs shim
# ---------------------------------------------------------------------------


def test_from_legacy_kwargs_cache_dir(tmp_path: Path) -> None:
    with pytest.warns(Ms2DeprecationWarning, match="cache_dir"):
        config = CacheConfig.from_legacy_kwargs(cache_dir=tmp_path)
    assert config.local_dir == str(tmp_path)


def test_from_legacy_kwargs_cache_dir_none_disables() -> None:
    with pytest.warns(Ms2DeprecationWarning):
        config = CacheConfig.from_legacy_kwargs(cache_dir=None)
    assert config.local_dir is None
    assert not config.enabled


def test_from_legacy_kwargs_use_disk_cache_false() -> None:
    with pytest.warns(Ms2DeprecationWarning, match="use_disk_cache"):
        config = CacheConfig.from_legacy_kwargs(use_disk_cache=False)
    assert config.local_dir is None
    assert config.remote is None


def test_from_legacy_kwargs_unknown_is_typeerror() -> None:
    with pytest.raises(TypeError, match="cache_size"):
        CacheConfig.from_legacy_kwargs(cache_size=9)


# ---------------------------------------------------------------------------
# BuildSession(cache=...) resolution
# ---------------------------------------------------------------------------


def test_session_legacy_cache_dir_still_works(tmp_path: Path) -> None:
    with pytest.warns(Ms2DeprecationWarning, match="CacheConfig"):
        session = BuildSession(cache_dir=tmp_path / "c")
    assert isinstance(session.cache, PersistentCache)
    assert session.cache_config.local_dir == str(tmp_path / "c")


def test_session_legacy_use_disk_cache_false() -> None:
    with pytest.warns(Ms2DeprecationWarning):
        session = BuildSession(use_disk_cache=False)
    assert session.cache is None


def test_session_cache_accepts_config(tmp_path: Path) -> None:
    config = CacheConfig(local_dir=str(tmp_path / "c"))
    session = BuildSession(cache=config)
    assert session.cache_config is config
    assert isinstance(session.cache, PersistentCache)


def test_session_cache_accepts_path_and_none(tmp_path: Path) -> None:
    by_path = BuildSession(cache=tmp_path / "c")
    assert isinstance(by_path.cache, PersistentCache)
    assert by_path.cache_config.local_dir == str(tmp_path / "c")
    assert BuildSession(cache=None).cache is None


def test_session_cache_accepts_ready_backend(tmp_path: Path) -> None:
    backend = PersistentCache(tmp_path / "c")
    session = BuildSession(cache=backend)
    assert session.cache is backend


def test_session_rejects_mixing_new_and_legacy(tmp_path: Path) -> None:
    with pytest.raises(TypeError, match="not both"):
        BuildSession(cache=None, cache_dir=tmp_path)


def test_session_default_is_cacheconfig_default(tmp_path, monkeypatch) -> None:
    monkeypatch.chdir(tmp_path)
    session = BuildSession()
    assert session.cache_config == CacheConfig()
    assert isinstance(session.cache, PersistentCache)


def test_session_is_a_context_manager(tmp_path: Path) -> None:
    with BuildSession(cache=tmp_path / "c") as session:
        assert session.cache is not None
    # close() is idempotent.
    session.close()
