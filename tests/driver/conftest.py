"""Fixtures for the driver tests (corpus constants live in
:mod:`tests.driver.corpus` so forked children can import them)."""

from __future__ import annotations

from pathlib import Path

import pytest

from tests.driver.corpus import (
    PROGRAM_PLAIN,
    PROGRAM_PRIVATE_MACRO,
    PROGRAM_USES_SHARED,
)


@pytest.fixture()
def corpus_dir(tmp_path: Path) -> Path:
    """A directory of three good translation units."""
    root = tmp_path / "src"
    root.mkdir()
    (root / "a_shared.c").write_text(PROGRAM_USES_SHARED)
    (root / "b_private.ms2").write_text(PROGRAM_PRIVATE_MACRO)
    (root / "c_plain.c").write_text(PROGRAM_PLAIN)
    return root


@pytest.fixture()
def cache_dir(tmp_path: Path) -> Path:
    """An isolated persistent-cache root."""
    return tmp_path / "cache"
