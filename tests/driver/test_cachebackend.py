"""CacheBackend unit coverage: the tiered composition against an
in-memory fake remote, and the remote backend's fail-open degradation
against an unreachable address.

The real daemon transport is exercised in
``tests/server/test_cache_ops.py``; here the remote tier is a plain
object, so read-through promotion, write-behind ordering, overflow
drops and the never-cache rule are tested without sockets or timing.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any

import pytest

from repro.driver import BuildSession, PersistentCache, TieredBackend
from repro.driver.cachebackend import (
    CacheBackend,
    RemoteCacheBackend,
    RemoteCacheError,
    backend_tiers,
    snapshot_digest,
    validate_snapshot,
)
from repro.options import Ms2Options

from tests.driver.corpus import SHARED_MACROS


def payload_for(key: str) -> dict[str, Any]:
    return {"key": key, "output": f"int {key[:6]};\n"}


class FakeRemote:
    """An in-memory stand-in for :class:`RemoteCacheBackend` — same
    duck type, no sockets.  ``gate`` (when given) blocks every store
    until released, to make write-behind ordering observable."""

    def __init__(self, gate: threading.Event | None = None) -> None:
        self.entries: dict[str, dict[str, Any]] = {}
        self.gate = gate
        self.store_calls: list[str] = []
        self.hits = 0
        self.misses = 0
        self.failures = 0
        self.evictions = 0
        self.loads = 0
        self.stores = 0
        self.load_ms = 0.0
        self.store_ms = 0.0

    def load(self, key: str) -> dict[str, Any] | None:
        self.loads += 1
        payload = self.entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return dict(payload)

    def store(self, key: str, payload: dict[str, Any]) -> bool:
        if self.gate is not None:
            assert self.gate.wait(30)
        self.stores += 1
        self.store_calls.append(key)
        self.entries[key] = dict(payload)
        return True

    def discard(self, key: str) -> None:
        self.hits = max(0, self.hits - 1)
        self.misses += 1
        self.failures += 1

    def counters(self) -> dict[str, Any]:
        return {
            "hits": self.hits, "misses": self.misses,
            "failures": self.failures, "evictions": self.evictions,
            "loads": self.loads, "stores": self.stores,
            "load_ms": self.load_ms, "store_ms": self.store_ms,
        }

    def describe(self) -> str:
        return "remote fake://"

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# Protocol conformance
# ---------------------------------------------------------------------------


def test_every_backend_satisfies_the_protocol(tmp_path: Path) -> None:
    local = PersistentCache(tmp_path / "c")
    remote = FakeRemote()
    assert isinstance(local, CacheBackend)
    assert isinstance(remote, CacheBackend)
    assert isinstance(
        TieredBackend(local, remote, write_behind=0), CacheBackend
    )
    assert isinstance(
        RemoteCacheBackend("tcp://127.0.0.1:1"), CacheBackend
    )


# ---------------------------------------------------------------------------
# Digest / validation helpers
# ---------------------------------------------------------------------------


def test_snapshot_digest_is_content_addressed() -> None:
    a = snapshot_digest({"key": "k", "output": "x"})
    assert a == snapshot_digest({"output": "x", "key": "k"})  # order-free
    assert a != snapshot_digest({"key": "k", "output": "y"})
    assert len(a) == 16
    int(a, 16)  # hex


@pytest.mark.parametrize(
    "bad",
    [
        None,
        "not a dict",
        {"output": "x"},                      # missing key
        {"key": "other", "output": "x"},      # wrong key
        {"key": "k", "output": 7},            # non-string output
    ],
)
def test_validate_snapshot_rejects_malformed(bad: Any) -> None:
    assert validate_snapshot(bad, "k") is None


def test_validate_snapshot_accepts_well_formed() -> None:
    good = {"key": "k", "output": "x", "extra": 1}
    assert validate_snapshot(good, "k") is good


def test_backend_tiers_flattens_and_nests(tmp_path: Path) -> None:
    flat = PersistentCache(tmp_path / "c").counters()
    assert backend_tiers(flat) == {"local": flat}
    tiered = TieredBackend(
        PersistentCache(tmp_path / "c"), FakeRemote(), write_behind=0
    )
    tiers = backend_tiers(tiered.counters())
    assert set(tiers) == {"local", "remote"}
    for sub in tiers.values():
        assert all(
            isinstance(v, (int, float)) for v in sub.values()
        )


# ---------------------------------------------------------------------------
# Tiered reads
# ---------------------------------------------------------------------------


def test_remote_hit_is_promoted_to_local(tmp_path: Path) -> None:
    local = PersistentCache(tmp_path / "c")
    remote = FakeRemote()
    key = "a" * 64
    remote.entries[key] = payload_for(key)
    tiered = TieredBackend(local, remote, write_behind=0)

    served = tiered.load(key)
    assert served is not None
    assert served["output"] == payload_for(key)["output"]
    assert tiered.hits == 1

    # Promoted: the local tier now answers without touching remote.
    assert local.load(key) is not None
    before = remote.loads
    assert tiered.load(key) is not None
    assert remote.loads == before


def test_local_hit_never_queries_remote(tmp_path: Path) -> None:
    local = PersistentCache(tmp_path / "c")
    remote = FakeRemote()
    key = "b" * 64
    local.store(key, payload_for(key))
    tiered = TieredBackend(local, remote, write_behind=0)
    assert tiered.load(key) is not None
    assert remote.loads == 0


def test_double_miss_is_one_effective_miss(tmp_path: Path) -> None:
    tiered = TieredBackend(
        PersistentCache(tmp_path / "c"), FakeRemote(), write_behind=0
    )
    assert tiered.load("c" * 64) is None
    assert tiered.misses == 1
    assert tiered.counters()["tiers"]["remote"]["misses"] == 1


def test_discard_after_remote_hit_rebooks_both(tmp_path: Path) -> None:
    local = PersistentCache(tmp_path / "c")
    remote = FakeRemote()
    key = "d" * 64
    remote.entries[key] = payload_for(key)
    tiered = TieredBackend(local, remote, write_behind=0)
    assert tiered.load(key) is not None
    tiered.discard(key)
    assert tiered.hits == 0
    assert tiered.misses == 1
    assert remote.failures == 1
    # The promoted local copy is gone too.
    assert local.load(key) is None


# ---------------------------------------------------------------------------
# Write-behind
# ---------------------------------------------------------------------------


def test_synchronous_store_publishes_both_tiers(tmp_path: Path) -> None:
    local = PersistentCache(tmp_path / "c")
    remote = FakeRemote()
    tiered = TieredBackend(local, remote, write_behind=0)
    key = "e" * 64
    assert tiered.store(key, payload_for(key))
    assert key in remote.entries
    assert local.load(key) is not None


def test_close_flushes_queued_publishes(tmp_path: Path) -> None:
    gate = threading.Event()
    remote = FakeRemote(gate=gate)
    tiered = TieredBackend(
        PersistentCache(tmp_path / "c"), remote, write_behind=8
    )
    keys = [f"{i:x}" * 64 for i in range(4)]
    for key in keys:
        tiered.store(key, payload_for(key))
    # Publishes are queued, not yet visible to the fleet.
    assert set(remote.entries) < set(keys) | {keys[0]}
    gate.set()
    tiered.close()
    # Flush-then-stop: everything accepted before close landed.
    assert set(remote.entries) == set(keys)
    assert tiered.wb_flushed == 4
    assert tiered.wb_dropped == 0


def test_overflow_drops_and_counts(tmp_path: Path) -> None:
    gate = threading.Event()
    remote = FakeRemote(gate=gate)
    tiered = TieredBackend(
        PersistentCache(tmp_path / "c"), remote, write_behind=1
    )
    keys = [f"{i:x}" * 64 for i in range(4)]
    dropped_before = 0
    for key in keys:
        tiered.store(key, payload_for(key))  # never blocks
    dropped = tiered.wb_dropped
    assert dropped >= 1, "a bounded queue under a blocked uploader must drop"
    gate.set()
    tiered.close()
    assert tiered.wb_flushed + tiered.wb_dropped == len(keys) - dropped_before
    # The build path kept every snapshot locally regardless.
    for key in keys:
        assert tiered.local.load(key) is not None


def test_store_never_blocks_on_a_stuck_remote(tmp_path: Path) -> None:
    gate = threading.Event()  # never set: the uploader hangs forever
    remote = FakeRemote(gate=gate)
    tiered = TieredBackend(
        PersistentCache(tmp_path / "c"), remote, write_behind=2
    )
    done = threading.Event()

    def run() -> None:
        for i in range(16):
            key = f"{i:02x}" * 32
            tiered.store(key, payload_for(key))
        done.set()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert done.wait(10), "store() blocked on the write-behind queue"
    gate.set()
    tiered.close()


# ---------------------------------------------------------------------------
# The never-cache rule crosses tiers
# ---------------------------------------------------------------------------


def test_budget_exhausted_is_never_published(tmp_path: Path) -> None:
    """PR 4's rule — budget-truncated recover-mode output is never
    pinned by the cache — must hold for the remote tier too: a
    truncated snapshot published to the fleet would poison every
    machine at once."""
    remote = FakeRemote()
    tiered = TieredBackend(
        PersistentCache(tmp_path / "c"), remote, write_behind=0
    )
    session = BuildSession(
        Ms2Options(recover=True, max_expansions=1),
        package_sources=[("shared.ms2", SHARED_MACROS)],
        cache=tiered,
    )
    source = "void f(void) { Twice { a(); } Twice { b(); } }\n"
    report = session.build_sources([("f.c", source)])
    assert report.results[0].status == "ok"
    assert any(
        d.get("category") == "ExpansionBudgetError"
        for d in report.results[0].diagnostics
    )
    session.close()
    assert remote.stores == 0, "budget-truncated result reached the fleet"
    assert remote.entries == {}
    assert tiered.local.entries() == []


def test_ok_results_are_published(tmp_path: Path) -> None:
    remote = FakeRemote()
    tiered = TieredBackend(
        PersistentCache(tmp_path / "c"), remote, write_behind=8
    )
    session = BuildSession(
        package_sources=[("shared.ms2", SHARED_MACROS)],
        cache=tiered,
    )
    report = session.build_sources([("ok.c", "int x = 1;\n")])
    assert report.ok
    session.close()  # flushes the write-behind queue
    assert remote.stores == 1


# ---------------------------------------------------------------------------
# Remote backend degradation (no daemon listening)
# ---------------------------------------------------------------------------

#: TEST-NET-1 port 1: connection refused immediately on any sane host.
UNREACHABLE = "tcp://127.0.0.1:1"


def test_unreachable_remote_fails_open() -> None:
    remote = RemoteCacheBackend(UNREACHABLE, timeout_s=0.5)
    assert remote.load("f" * 64) is None
    assert remote.store("f" * 64, payload_for("f" * 64)) is False
    counters = remote.counters()
    assert counters["errors"] >= 2
    assert counters["hits"] == 0


def test_breaker_opens_after_consecutive_errors() -> None:
    remote = RemoteCacheBackend(UNREACHABLE, timeout_s=0.5)
    for _ in range(3):
        assert remote.load("a" * 64) is None
    assert remote.down
    skipped_before = remote.skipped
    assert remote.load("a" * 64) is None
    assert remote.skipped == skipped_before + 1


def test_fail_closed_raises() -> None:
    remote = RemoteCacheBackend(
        UNREACHABLE, timeout_s=0.5, fail_open=False
    )
    with pytest.raises(RemoteCacheError, match="get"):
        remote.load("a" * 64)
