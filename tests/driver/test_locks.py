"""FileLock: acquisition, contention, timeout, release semantics."""

from __future__ import annotations

import multiprocessing
import time
from pathlib import Path

import pytest

from repro.driver.locks import FileLock, LockTimeout


def test_acquire_release_roundtrip(tmp_path: Path) -> None:
    lock = FileLock(tmp_path / "entry.lock")
    assert not lock.held
    lock.acquire()
    assert lock.held
    assert (tmp_path / "entry.lock").exists()
    lock.release()
    assert not lock.held


def test_release_is_idempotent(tmp_path: Path) -> None:
    lock = FileLock(tmp_path / "entry.lock")
    lock.acquire()
    lock.release()
    lock.release()  # second release is a no-op, not an error
    assert not lock.held


def test_context_manager(tmp_path: Path) -> None:
    with FileLock(tmp_path / "entry.lock") as lock:
        assert lock.held
    assert not lock.held


def test_creates_missing_parent_directories(tmp_path: Path) -> None:
    with FileLock(tmp_path / "deep" / "er" / "entry.lock") as lock:
        assert lock.held


def test_double_acquire_same_instance_raises(tmp_path: Path) -> None:
    lock = FileLock(tmp_path / "entry.lock")
    lock.acquire()
    try:
        with pytest.raises(RuntimeError):
            lock.acquire()
    finally:
        lock.release()


def test_contention_times_out(tmp_path: Path) -> None:
    path = tmp_path / "entry.lock"
    holder = FileLock(path)
    holder.acquire()
    try:
        waiter = FileLock(path, timeout=0.2)
        start = time.monotonic()
        with pytest.raises(LockTimeout):
            waiter.acquire()
        assert time.monotonic() - start >= 0.2
        assert not waiter.held
    finally:
        holder.release()


def test_acquire_after_release(tmp_path: Path) -> None:
    path = tmp_path / "entry.lock"
    first = FileLock(path)
    first.acquire()
    first.release()
    second = FileLock(path, timeout=0.5)
    second.acquire()  # must not time out: the lock was dropped
    second.release()


def _hold_briefly(path: str, held: "multiprocessing.Event") -> None:
    with FileLock(path):
        held.set()
        time.sleep(0.3)


def test_cross_process_exclusion(tmp_path: Path) -> None:
    """A lock held by another process blocks us until it is dropped."""
    path = tmp_path / "entry.lock"
    held = multiprocessing.Event()
    proc = multiprocessing.Process(
        target=_hold_briefly, args=(str(path), held)
    )
    proc.start()
    try:
        assert held.wait(timeout=10.0)
        start = time.monotonic()
        with FileLock(path, timeout=10.0):
            # We only got here after the holder released (~0.3s).
            assert time.monotonic() - start > 0.05
    finally:
        proc.join(timeout=10.0)
    assert proc.exitcode == 0


# ---------------------------------------------------------------------------
# The O_EXCL fallback path (fcntl unavailable): stale-lock breaking.
# ---------------------------------------------------------------------------


@pytest.fixture
def no_fcntl(monkeypatch):
    """Force the O_CREAT|O_EXCL fallback used where fcntl is absent."""
    from repro.driver import locks as locks_mod

    monkeypatch.setattr(locks_mod, "fcntl", None)
    return locks_mod


def test_fallback_roundtrip_and_exclusion(no_fcntl, tmp_path: Path) -> None:
    path = tmp_path / "entry.lock"
    holder = FileLock(path)
    holder.acquire()
    try:
        # The fallback stamps the owner PID into the lock file.
        assert path.read_text().strip() == str(__import__("os").getpid())
        waiter = FileLock(path, timeout=0.2)
        with pytest.raises(LockTimeout):
            waiter.acquire()
    finally:
        holder.release()
    assert not path.exists()  # fallback release unlinks the file
    FileLock(path, timeout=0.5).acquire()


def test_fallback_breaks_lock_of_dead_owner(no_fcntl, tmp_path: Path) -> None:
    """A lock file stamped with a provably dead PID is reclaimed
    immediately — no 30s stale-age wait."""
    path = tmp_path / "entry.lock"
    # Simulate a crashed owner: a real process that has already
    # exited, so its PID is known-dead (modulo astronomically
    # unlikely reuse in the microseconds of this test).
    proc = multiprocessing.Process(target=lambda: None)
    proc.start()
    proc.join(timeout=10.0)
    path.write_text(str(proc.pid))
    lock = FileLock(path, timeout=2.0)
    start = time.monotonic()
    lock.acquire()  # must break the dead owner's lock, not time out
    try:
        assert time.monotonic() - start < 2.0
        assert lock.held
    finally:
        lock.release()


def test_fallback_respects_live_owner(no_fcntl, tmp_path: Path) -> None:
    """A lock stamped with a live PID under the stale age is never
    broken."""
    import os

    path = tmp_path / "entry.lock"
    path.write_text(str(os.getpid()))  # we are definitely alive
    waiter = FileLock(path, timeout=0.2)
    with pytest.raises(LockTimeout):
        waiter.acquire()
    assert path.exists()


def test_fallback_breaks_aged_garbled_lock(no_fcntl, tmp_path: Path) -> None:
    """An unreadable PID stamp falls back to the age check: older
    than _STALE_AGE is reclaimed."""
    import os

    from repro.driver import locks as locks_mod

    path = tmp_path / "entry.lock"
    path.write_text("not-a-pid")
    old = time.time() - (locks_mod._STALE_AGE + 5.0)
    os.utime(path, (old, old))
    lock = FileLock(path, timeout=2.0)
    lock.acquire()
    try:
        assert lock.held
    finally:
        lock.release()


def test_fallback_keeps_young_garbled_lock(no_fcntl, tmp_path: Path) -> None:
    path = tmp_path / "entry.lock"
    path.write_text("not-a-pid")  # fresh mtime, unreadable stamp
    waiter = FileLock(path, timeout=0.2)
    with pytest.raises(LockTimeout):
        waiter.acquire()
