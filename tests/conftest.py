"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import MacroProcessor
from repro.asttypes.env import TypeEnv
from repro.asttypes.types import AstType
from repro.lexer.scanner import tokenize
from repro.parser.core import Parser


@pytest.fixture()
def mp() -> MacroProcessor:
    """A fresh macro processor."""
    return MacroProcessor()


@pytest.fixture()
def std_mp() -> MacroProcessor:
    """A processor with all standard packages loaded."""
    from repro.packages import load_standard

    processor = MacroProcessor()
    load_standard(processor)
    return processor


def c_tokens(source: str) -> list[str]:
    """Token spellings of a C fragment (whitespace-insensitive form)."""
    return [t.text for t in tokenize(source, meta=False)][:-1]


def assert_c_equal(actual: str, expected: str) -> None:
    """Compare two C fragments token-by-token (layout-insensitive)."""
    actual_toks = c_tokens(actual)
    expected_toks = c_tokens(expected)
    assert actual_toks == expected_toks, (
        "C token streams differ:\n"
        f"  actual:   {' '.join(actual_toks)}\n"
        f"  expected: {' '.join(expected_toks)}"
    )


def parse_c(source: str):
    """Parse plain C source into a TranslationUnit (no macro host)."""
    return Parser(source).parse_program()


def parse_expr(source: str):
    """Parse a single C expression."""
    parser = Parser(source)
    return parser.parse_expression()


def parse_stmt(source: str):
    """Parse a single C statement."""
    parser = Parser(source)
    return parser.parse_statement()


def parse_meta_expr(source: str, bindings: dict[str, AstType] | None = None):
    """Parse a meta-expression with the given type environment, and
    return ``(expr, inferred_type)``."""
    from repro.asttypes.check import MetaTypeInferencer

    parser = Parser(source)
    env: TypeEnv = parser.global_type_env.child()
    for name, asttype in (bindings or {}).items():
        env.bind(name, asttype)
    with parser._meta(True), parser._scoped_env(env):
        expr = parser.parse_expression()
        inferred = MetaTypeInferencer(env).infer(expr)
    return expr, inferred
