"""The fault-injection registry itself: spec grammar, determinism,
counting, and the zero-overhead disarmed default."""

from __future__ import annotations

import pytest

from repro import faults


class TestParseSpec:
    def test_minimal(self):
        spec = faults.parse_spec("cache.load:0.5:io_error")
        assert spec.site == "cache.load"
        assert spec.prob == 0.5
        assert spec.kind == "io_error"
        assert spec.after_n == 0
        assert spec.max_fires == 0
        assert spec.match is None

    def test_full_form_with_match(self):
        spec = faults.parse_spec("driver.worker@b.c:1:kill:2:1")
        assert spec.site == "driver.worker"
        assert spec.match == "b.c"
        assert spec.prob == 1.0
        assert spec.kind == "kill"
        assert spec.after_n == 2
        assert spec.max_fires == 1

    def test_roundtrip_through_to_string(self):
        spec = faults.parse_spec("server.frame_write@expand:0.25:delay")
        assert faults.parse_spec(spec.to_string()) == spec

    @pytest.mark.parametrize(
        "bad",
        [
            "nope.site:1:io_error",  # unknown site
            "cache.load:1:explode",  # unknown kind
            "cache.load:2:io_error",  # prob out of range
            "cache.load:-0.1:io_error",
            "cache.load:x:io_error",  # unparseable prob
            "cache.load:1",  # too few fields
            "cache.load:1:io_error:1:2:3",  # too many fields
            "cache.load:1:io_error:-1",  # negative count
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            faults.parse_spec(bad)

    def test_every_registered_site_parses(self):
        for site in faults.SITES:
            assert faults.parse_spec(f"{site}:1:delay").site == site


class TestFaultPlan:
    def test_disarmed_by_default(self):
        assert faults.ACTIVE is None

    def test_arm_and_disarm(self):
        plan = faults.arm("cache.load:1:io_error", seed=1)
        assert faults.ACTIVE is plan
        faults.disarm()
        assert faults.ACTIVE is None

    def test_io_error_fires_and_counts(self):
        plan = faults.FaultPlan(
            [faults.parse_spec("cache.load:1:io_error")], seed=7
        )
        with pytest.raises(faults.InjectedFault) as info:
            plan.hit("cache.load", b"data")
        assert info.value.site == "cache.load"
        assert isinstance(info.value, IOError)
        assert plan.counters() == {"cache.load": 1}

    def test_other_sites_untouched(self):
        plan = faults.FaultPlan(
            [faults.parse_spec("cache.load:1:io_error")], seed=7
        )
        assert plan.hit("cache.store", b"data") == b"data"
        assert plan.counters() == {}

    def test_same_seed_same_decisions(self):
        decisions = []
        for _ in range(2):
            plan = faults.FaultPlan(
                [faults.parse_spec("cache.load:0.5:io_error")], seed=99
            )
            fired = []
            for _ in range(64):
                try:
                    plan.hit("cache.load")
                    fired.append(False)
                except faults.InjectedFault:
                    fired.append(True)
            decisions.append(fired)
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_different_seeds_diverge(self):
        outcomes = []
        for seed in (1, 2):
            plan = faults.FaultPlan(
                [faults.parse_spec("cache.load:0.5:io_error")], seed=seed
            )
            fired = []
            for _ in range(64):
                try:
                    plan.hit("cache.load")
                    fired.append(False)
                except faults.InjectedFault:
                    fired.append(True)
            outcomes.append(fired)
        assert outcomes[0] != outcomes[1]

    def test_after_n_skips_first_checks(self):
        plan = faults.FaultPlan(
            [faults.parse_spec("cache.load:1:io_error:3")], seed=0
        )
        for _ in range(3):
            plan.hit("cache.load")  # skipped, no raise
        with pytest.raises(faults.InjectedFault):
            plan.hit("cache.load")

    def test_max_fires_caps_injections(self):
        plan = faults.FaultPlan(
            [faults.parse_spec("cache.load:1:io_error:0:2")], seed=0
        )
        for _ in range(2):
            with pytest.raises(faults.InjectedFault):
                plan.hit("cache.load")
        plan.hit("cache.load")  # capped: no raise
        assert plan.counters() == {"cache.load": 2}

    def test_match_filters_on_context(self):
        plan = faults.FaultPlan(
            [faults.parse_spec("driver.worker@evil.c:1:io_error")],
            seed=0,
        )
        plan.hit("driver.worker", context="fine.c")
        plan.hit("driver.worker", context=None)
        with pytest.raises(faults.InjectedFault):
            plan.hit("driver.worker", context="src/evil.c")

    def test_corrupt_mangles_bytes(self):
        plan = faults.FaultPlan(
            [faults.parse_spec("cache.load:1:corrupt")], seed=0
        )
        blob = b"hello snapshot"
        mangled = plan.hit("cache.load", blob)
        assert mangled != blob
        assert len(mangled) == len(blob)

    def test_delay_returns_data(self):
        plan = faults.FaultPlan(
            [faults.parse_spec("cache.load:1:delay")], seed=0
        )
        assert plan.hit("cache.load", b"x") == b"x"

    def test_conn_reset_raises(self):
        plan = faults.FaultPlan(
            [faults.parse_spec("server.frame_write:1:conn_reset")],
            seed=0,
        )
        with pytest.raises(ConnectionResetError):
            plan.hit("server.frame_write", b"{}")


class TestEnvArming:
    def test_arm_from_env_roundtrip(self):
        env = {}
        plan = faults.FaultPlan(
            [
                faults.parse_spec("cache.load:0.5:io_error:1:2"),
                faults.parse_spec("driver.worker@a.c:1:kill"),
            ],
            seed=42,
        )
        faults.export_to_env(plan, env)
        rearmed = faults.arm_from_env(env)
        assert rearmed is not None
        assert rearmed.seed == 42
        assert rearmed.specs == plan.specs
        faults.disarm()

    def test_empty_env_is_a_noop(self):
        assert faults.arm_from_env({}) is None
        assert faults.arm_from_env({"MS2_FAULTS": "  "}) is None
