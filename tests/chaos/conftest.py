"""Fixtures for the chaos suite: the server-thread fixtures from the
daemon tests, plus guaranteed disarm of the process-wide fault plan
after every test so one armed chaos test can never leak faults into
its neighbours."""

from __future__ import annotations

import pytest

from repro import faults
from tests.server.conftest import (  # noqa: F401  (re-exported fixtures)
    DOUBLER,
    ServerHandle,
    doubler_program,
    server,
    server_factory,
)


@pytest.fixture(autouse=True)
def _disarm_faults():
    """Every chaos test starts and ends with fault injection off."""
    faults.disarm()
    yield
    faults.disarm()
