"""The remote-cache chaos matrix: every way the authority can fail —
down at startup, connection reset mid-publish, corrupt payload in
transit, answers slower than the budget — and every time the build
must complete with output byte-identical to a build that never had a
remote cache at all (*fail-open*).  A remote cache may make builds
faster; it must never make them wrong, and never make them fail."""

from __future__ import annotations

import pytest

from repro import faults
from repro.driver import BuildSession, CacheConfig
from repro.driver.cachebackend import RemoteCacheError

from tests.driver.corpus import SHARED_MACROS, synthetic_sources

SOURCES = synthetic_sources(5)

#: No daemon has ever listened here (port 1: refused instantly).
DEAD_REMOTE = "tcp://127.0.0.1:1"


def build(cache) -> "tuple":
    session = BuildSession(
        package_sources=[("shared.ms2", SHARED_MACROS)],
        cache=cache,
    )
    try:
        report = session.build_sources(SOURCES)
    finally:
        session.close()
    return report, [r.output for r in report.results]


@pytest.fixture(scope="module")
def baseline_outputs():
    """Ground truth: the same batch with no cache of any kind."""
    session = BuildSession(
        package_sources=[("shared.ms2", SHARED_MACROS)], cache=None
    )
    report = session.build_sources(SOURCES)
    assert report.ok
    return [r.output for r in report.results]


@pytest.fixture
def live_remote(server_factory, tmp_path):
    """A real authority daemon plus a CacheConfig pointing at it."""
    handle = server_factory(cache_dir=tmp_path / "authority")

    def config(**overrides):
        kwargs = dict(
            local_dir=str(tmp_path / "local"),
            remote=f"unix://{handle.socket_path}",
            write_behind=0,  # stores on the build path: faults land
        )
        kwargs.update(overrides)
        return CacheConfig(**kwargs)

    return handle, config


# ---------------------------------------------------------------------------
# The matrix
# ---------------------------------------------------------------------------


def test_remote_down_at_startup(tmp_path, baseline_outputs):
    """No daemon ever listened: every remote op degrades to a counted
    miss and the batch builds locally, byte-identical."""
    report, outputs = build(
        CacheConfig(
            local_dir=str(tmp_path / "local"),
            remote=DEAD_REMOTE,
            write_behind=0,
            remote_timeout_s=0.5,
        )
    )
    assert report.ok
    assert outputs == baseline_outputs
    remote_tier = report.cache["tiers"]["remote"]
    assert remote_tier["hits"] == 0
    assert remote_tier["errors"] >= 1


def test_conn_reset_mid_publish(live_remote, baseline_outputs):
    """Connections reset during every cache_put: snapshots stay
    local-only, the build neither blocks nor fails."""
    faults.arm("remote_cache.put:1:conn_reset", seed=41)
    report, outputs = build(live_remote[1]())
    assert report.ok
    assert outputs == baseline_outputs
    remote_tier = report.cache["tiers"]["remote"]
    assert remote_tier["errors"] >= 1
    assert faults.ACTIVE.injected.get("remote_cache.put", 0) >= 1


def test_corrupt_remote_payload(live_remote, baseline_outputs):
    """The authority answers, but the payload is mangled in transit:
    the content digest rejects it and the file re-expands locally —
    corrupt bytes can never become build output."""
    handle, config = live_remote
    # Warm the authority so cache_get actually answers snapshots.
    warm, _ = build(config())
    assert warm.ok
    faults.arm("remote_cache.get:1:corrupt", seed=43)
    # A fresh, empty local dir forces every read to the remote tier.
    report, outputs = build(
        config(local_dir=str(handle.socket_path.parent / "fresh-local"))
    )
    assert report.ok
    assert outputs == baseline_outputs
    remote_tier = report.cache["tiers"]["remote"]
    assert remote_tier["hits"] == 0
    assert remote_tier["failures"] + remote_tier["errors"] >= 1
    assert faults.ACTIVE.injected.get("remote_cache.get", 0) >= 1


def test_slow_remote_past_budget(live_remote, baseline_outputs):
    """Answers slower than ``remote_timeout_s`` are discarded as
    misses: a late snapshot is worth less than re-expanding."""
    handle, config = live_remote
    warm, _ = build(config())
    assert warm.ok
    faults.arm("remote_cache.get:1:delay", seed=47)
    report, outputs = build(
        config(
            local_dir=str(handle.socket_path.parent / "slow-local"),
            remote_timeout_s=0.01,  # < the injected DELAY_S
        )
    )
    assert report.ok
    assert outputs == baseline_outputs
    remote_tier = report.cache["tiers"]["remote"]
    assert remote_tier["hits"] == 0
    assert remote_tier["timeouts"] >= 1


def test_fail_closed_surfaces_the_failure(tmp_path):
    """``fail_open=False`` is the loud variant for CI: a dead
    authority raises instead of silently degrading."""
    session = BuildSession(
        package_sources=[("shared.ms2", SHARED_MACROS)],
        cache=CacheConfig(
            local_dir=None,
            remote=DEAD_REMOTE,
            write_behind=0,
            remote_timeout_s=0.5,
            fail_open=False,
        ),
    )
    try:
        with pytest.raises(RemoteCacheError):
            session.build_sources(SOURCES[:1])
    finally:
        session.close()


def test_recovery_after_startup_outage(live_remote, baseline_outputs):
    """One build rode out a total remote outage; the next build (new
    session, healthy daemon) uses the remote tier normally — the
    breaker is per-session state, not a poison pill."""
    handle, config = live_remote
    faults.arm(
        "remote_cache.get:1:io_error",
        "remote_cache.put:1:io_error",
        seed=53,
    )
    outage, outputs = build(config())
    assert outage.ok
    assert outputs == baseline_outputs
    faults.disarm()
    # Publish from a healthy session (fresh local dir — the outage
    # session's local tier would otherwise satisfy every read before
    # anything got expanded, and only fresh expansions publish).
    healthy, _ = build(
        config(local_dir=str(handle.socket_path.parent / "healthy-local"))
    )
    assert healthy.ok
    fresh, fresh_outputs = build(
        config(local_dir=str(handle.socket_path.parent / "post-outage"))
    )
    assert fresh.files_from_cache == len(SOURCES)
    assert fresh_outputs == baseline_outputs
