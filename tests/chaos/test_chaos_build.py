"""Batch builds that survive dying worker processes: an injected
``kill`` fault takes a real ``ProcessPoolExecutor`` worker down with
``os._exit`` and the build must finish anyway — bystander files
retried, the poisonous file quarantined, never a raised
``BrokenProcessPool``."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import faults
from repro.driver.scheduler import BuildSession

PROGRAM_TEMPLATE = "int f{index}(void) {{ return {index}; }}\n"


def _sources(count):
    return [
        (f"file{index:02d}.c", PROGRAM_TEMPLATE.format(index=index))
        for index in range(count)
    ]


class TestCrashSurvivingBuild:
    def test_poisonous_file_is_quarantined(self):
        # fork-started pool workers inherit the armed plan directly.
        faults.arm("driver.worker@poison.c:1:kill", seed=23)
        session = BuildSession(jobs=2, cache=None, retries=2)
        sources = _sources(8) + [("poison.c", "int g(void);\n")]
        report = session.build_sources(sources)  # must not raise
        assert len(report.results) == 9
        by_path = {r.path: r for r in report.results}
        assert by_path["poison.c"].status == "poisoned"
        assert by_path["poison.c"].error_type == "BrokenProcessPool"
        assert "quarantined" in by_path["poison.c"].error
        for name, _ in _sources(8):
            assert by_path[name].status == "ok", name
        assert report.files_poisoned == 1
        assert report.worker_restarts >= 1
        assert report.ok is False
        assert report.to_json()["files_poisoned"] == 1

    def test_one_shot_crash_recovers_without_quarantine(self):
        # The fault plan is per-process, so a one-shot kill fires in
        # one pool worker; the retry runs in a fresh process whose
        # counter would fire again — target the *first* check only
        # via after_n=0/max_fires=1 plus a match that the retried
        # file never presents.  Simplest deterministic arrangement:
        # kill a bystander's first attempt and let the retry through
        # by capping fires per process and retrying a *different*
        # code path is not expressible — so instead verify that the
        # surviving-batch invariant holds: every file not armed for
        # a kill completes ok even though a worker died mid-batch.
        faults.arm("driver.worker@poison.c:1:kill", seed=29)
        session = BuildSession(jobs=2, cache=None, retries=1)
        sources = [("poison.c", "int g(void);\n")] + _sources(6)
        report = session.build_sources(sources)
        ok = [r for r in report.results if r.status == "ok"]
        assert len(ok) == 6
        assert report.files_poisoned == 1

    def test_retries_zero_quarantines_immediately(self):
        faults.arm("driver.worker@poison.c:1:kill", seed=31)
        session = BuildSession(jobs=2, cache=None, retries=0)
        sources = _sources(3) + [("poison.c", "int g(void);\n")]
        report = session.build_sources(sources)
        by_path = {r.path: r for r in report.results}
        assert by_path["poison.c"].status == "poisoned"
        assert report.worker_restarts >= 1

    def test_sequential_path_unaffected_by_pool_logic(self):
        session = BuildSession(jobs=1, cache=None)
        report = session.build_sources(_sources(3))
        assert report.ok
        assert report.worker_restarts == 0
        assert report.files_poisoned == 0


class TestCliBuildUnderInjectedKill:
    def test_twenty_file_build_completes(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        for name, source in _sources(20):
            (src / name).write_text(source)
        env = {
            key: value for key, value in os.environ.items()
            if key not in ("MS2_FAULTS", "MS2_FAULT_SEED")
        }
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[2] / "src"
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "build", str(src),
                "-j", "2", "--no-disk-cache", "--report", "json",
                "--retries", "2", "--fault-seed", "37",
                "--inject-fault", "driver.worker@file07.c:1:kill",
            ],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )
        assert "BrokenProcessPool" not in proc.stderr
        assert "Traceback" not in proc.stderr
        report = json.loads(proc.stdout)
        assert report["files"] == 20
        statuses = {
            r["path"].rsplit("/", 1)[-1]: r["status"]
            for r in report["results"]
        }
        ok = sum(1 for s in statuses.values() if s == "ok")
        poisoned = sum(1 for s in statuses.values() if s == "poisoned")
        assert ok >= 19
        assert poisoned <= 1
        assert statuses["file07.c"] == "poisoned"
        assert report["worker_restarts"] >= 1
        assert report["files_poisoned"] == poisoned
        assert proc.returncode == 1  # poisoned file: not fully ok
        assert "fault injection armed" in proc.stderr

    def test_fault_free_build_exits_zero(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        for name, source in _sources(4):
            (src / name).write_text(source)
        env = {
            key: value for key, value in os.environ.items()
            if key not in ("MS2_FAULTS", "MS2_FAULT_SEED")
        }
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[2] / "src"
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "build", str(src),
                "-j", "2", "--no-disk-cache", "--report", "json",
            ],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        assert report["ok"] is True
        assert report["worker_restarts"] == 0
