"""Client-side resilience: RetryPolicy classification and backoff,
``wait_ready`` timeout behaviour, end-to-end retries against an
in-process daemon, and the ``--fallback local`` degradation path."""

from __future__ import annotations

import socket
import time

import pytest

from repro import faults
from repro.cli import main as cli_main
from repro.client import (
    RETRYABLE_CODES,
    Ms2Client,
    Ms2ServerError,
    RetryPolicy,
    client_counters,
)

PROGRAM = "int main(void) { return 42; }\n"


class TestRetryPolicy:
    def test_retryable_codes(self):
        policy = RetryPolicy()
        for code in RETRYABLE_CODES:
            exc = Ms2ServerError(code, "x", {"code": code})
            assert policy.retryable_error(exc)
        for code in ("bad_request", "expansion_error", "internal"):
            exc = Ms2ServerError(code, "x", {"code": code})
            assert not policy.retryable_error(exc)

    def test_retryable_exception_types(self):
        policy = RetryPolicy()
        assert policy.retryable_error(ConnectionResetError())
        assert policy.retryable_error(socket.timeout())
        assert policy.retryable_error(OSError("disk"))
        assert not policy.retryable_error(ValueError("nope"))

    def test_backoff_within_exponential_ceiling(self):
        policy = RetryPolicy(base_delay_s=0.05, max_delay_s=2.0)
        for attempt in range(1, 10):
            ceiling = min(2.0, 0.05 * 2 ** (attempt - 1))
            for _ in range(32):
                sleep = policy.backoff_s(attempt)
                assert 0.0 <= sleep <= ceiling

    def test_retry_after_hint_raises_ceiling(self):
        policy = RetryPolicy(base_delay_s=0.001, max_delay_s=2.0)
        # With the hint the ceiling is 1s; without it, 1ms.  Sampling
        # 64 draws, at least one must exceed the un-hinted ceiling.
        draws = [policy.backoff_s(1, retry_after_ms=1000.0)
                 for _ in range(64)]
        assert all(0.0 <= d <= 1.0 for d in draws)
        assert max(draws) > 0.001

    def test_retry_after_hint_still_capped(self):
        policy = RetryPolicy(max_delay_s=0.2)
        for _ in range(32):
            assert policy.backoff_s(1, retry_after_ms=60_000) <= 0.2


class TestWaitReady:
    def test_honours_timeout(self, tmp_path):
        client = Ms2Client(tmp_path / "never.sock")
        started = time.monotonic()
        with pytest.raises(TimeoutError):
            client.wait_ready(timeout=0.6)
        elapsed = time.monotonic() - started
        assert 0.55 <= elapsed < 5.0

    def test_returns_quickly_when_up(self, server):
        client = server.client()
        started = time.monotonic()
        client.wait_ready(timeout=10.0)
        assert time.monotonic() - started < 5.0
        client.close()


class TestEndToEndRetry:
    def test_frame_write_reset_is_retried(self, server):
        baseline = server.client().__enter__().expand(
            PROGRAM, "prog.c"
        )
        # One-shot connection reset while writing the next expand
        # response: the client must reconnect and replay.
        faults.arm(
            "server.frame_write@expand:1:conn_reset:0:1", seed=5
        )
        before = client_counters()["retries"]
        with server.client(retry=RetryPolicy()) as client:
            result = client.expand(PROGRAM, "prog.c")
        assert result.output == baseline.output
        assert client.retries >= 1
        assert client_counters()["retries"] > before

    def test_unavailable_frame_carries_retry_after_hint(
        self, server_factory
    ):
        handle = server_factory(warm_spares=0)
        faults.arm("pool.build_worker:1:io_error", seed=5)
        with handle.client() as client:  # no retry: see the frame
            with pytest.raises(Ms2ServerError) as info:
                client.expand(PROGRAM, "prog.c")
        assert info.value.code == "unavailable"
        hint = info.value.payload.get("retry_after_ms")
        assert isinstance(hint, int) and hint >= 1

    def test_unavailable_recovers_under_retry(self, server_factory):
        handle = server_factory(warm_spares=0)
        baseline = handle.client().__enter__().expand(
            PROGRAM, "prog.c"
        )
        faults.arm("pool.build_worker:1:io_error:0:1", seed=5)
        with handle.client(retry=RetryPolicy()) as client:
            result = client.expand(PROGRAM, "prog.c")
        assert result.output == baseline.output
        assert client.retries >= 1

    def test_no_policy_still_fails_fast(self, server_factory):
        handle = server_factory(warm_spares=0)
        faults.arm("pool.build_worker:1:io_error", seed=5)
        with handle.client() as client:
            with pytest.raises(Ms2ServerError):
                client.expand(PROGRAM, "prog.c")


class TestFallbackLocal:
    def test_byte_identical_when_daemon_down(self, tmp_path, capsys):
        prog = tmp_path / "prog.c"
        prog.write_text(PROGRAM)
        assert cli_main(["expand", str(prog)]) == 0
        local_out = capsys.readouterr().out

        before = client_counters()["fallbacks"]
        code = cli_main(
            [
                "expand",
                "--server", str(tmp_path / "nope.sock"),
                "--fallback", "local",
                str(prog),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == local_out
        assert "falling back" in captured.err
        assert client_counters()["fallbacks"] == before + 1

    def test_default_fallback_is_fail(self, tmp_path, capsys):
        prog = tmp_path / "prog.c"
        prog.write_text(PROGRAM)
        code = cli_main(
            ["expand", "--server", str(tmp_path / "nope.sock"),
             str(prog)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.out == ""
