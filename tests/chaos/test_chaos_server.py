"""Server-side chaos: every registered fault site armed against a
live in-process daemon.  A retrying client must come through every
one-shot fault with byte-identical output, and persistent faults must
surface as *typed* protocol errors — never an ``internal`` frame,
never a leaked stack trace."""

from __future__ import annotations

import pytest

from repro import faults
from repro.client import Ms2ServerError, RetryPolicy

PROGRAM = "int main(void) { return 42; }\n"

#: One-shot fault per site, chosen so the fault lands on the serving
#: path (``kill`` is excluded here: the daemon fixture runs
#: in-process, so killing a "worker" would kill the test runner —
#: the real subprocess kill is exercised in test_chaos_build).
ONE_SHOT_SPECS = [
    "cache.load:1:io_error:0:1",
    "cache.load:1:corrupt:0:1",
    "cache.store:1:io_error:0:1",
    "cache.store:1:corrupt:0:1",
    "lock.acquire:1:io_error:0:1",
    "server.frame_write@expand_file:1:conn_reset:0:1",
    "server.frame_write@expand_file:1:io_error:0:1",
    "pool.build_worker:1:io_error:0:1",
    "driver.worker:1:io_error:0:1",
    "eventlog.write:1:io_error:0:1",
    # The remote_cache.* sites live on the build client's
    # RemoteCacheBackend, not the daemon's expand path — armed here
    # for coverage, exercised in depth in test_remote_cache_chaos.
    "remote_cache.get:1:io_error:0:1",
    "remote_cache.put:1:conn_reset:0:1",
]


@pytest.fixture
def chaos_server(server_factory, tmp_path):
    """A daemon with every fault-reachable subsystem switched on:
    cold worker builds (warm_spares=0), a persistent cache, an event
    log."""
    return server_factory(
        warm_spares=0,
        cache_dir=tmp_path / "chaos-cache",
        event_log=tmp_path / "chaos-events.jsonl",
    )


def _expand_file_output(handle, path, retry=None):
    with handle.client(retry=retry) as client:
        return client.expand_file(str(path))["output"]


class TestOneShotFaultsAreSurvivable:
    @pytest.mark.parametrize("spec", ONE_SHOT_SPECS)
    def test_retrying_client_gets_identical_bytes(
        self, chaos_server, tmp_path, spec
    ):
        prog = tmp_path / "prog.c"
        prog.write_text(PROGRAM)
        baseline = _expand_file_output(chaos_server, prog)
        faults.arm(spec, seed=11)
        output = _expand_file_output(
            chaos_server, prog, retry=RetryPolicy()
        )
        assert output == baseline

    def test_every_site_is_covered(self):
        armed = {faults.parse_spec(s).site for s in ONE_SHOT_SPECS}
        assert armed == set(faults.SITES)


class TestPersistentFaultsStayTyped:
    """Sites armed at probability 1 with no fire cap: whatever the
    failure, the daemon must answer a typed error frame (or drop the
    connection) — no ``internal`` code, no traceback text."""

    PERSISTENT_SPECS = [
        "cache.load:1:io_error",
        "cache.load:1:corrupt",
        "cache.store:1:io_error",
        "lock.acquire:1:io_error",
        "pool.build_worker:1:io_error",
        "driver.worker:1:io_error",
        "eventlog.write:1:io_error",
        "server.frame_write:1:io_error",
    ]

    @pytest.mark.parametrize("spec", PERSISTENT_SPECS)
    def test_no_internal_errors_no_trace_leak(
        self, chaos_server, tmp_path, spec
    ):
        prog = tmp_path / "prog.c"
        prog.write_text(PROGRAM)
        faults.arm(spec, seed=13)
        try:
            with chaos_server.client() as client:
                result = client.expand_file(str(prog))
            assert result["status"] == "ok"  # fault was absorbed
        except Ms2ServerError as exc:
            assert exc.code != "internal"
            assert exc.code in ("unavailable", "expansion_error")
            assert "Traceback" not in str(exc)
        except OSError:
            pass  # dropped connection (frame_write): typed enough

    def test_injected_counters_reach_stats(self, chaos_server, tmp_path):
        prog = tmp_path / "prog.c"
        prog.write_text(PROGRAM)
        plan = faults.arm("eventlog.write:1:io_error", seed=17)
        with chaos_server.client() as client:
            assert client.expand_file(str(prog))["status"] == "ok"
            stats = client.stats()
        assert stats["faults"]["armed"] is True
        assert stats["faults"]["seed"] == plan.seed
        assert stats["faults"]["injected"].get("eventlog.write", 0) >= 1
        assert stats["resilience"]["eventlog_errors"] >= 1

    def test_stats_report_disarmed_by_default(self, chaos_server):
        with chaos_server.client() as client:
            stats = client.stats()
        assert stats["faults"] == {
            "armed": False, "seed": None, "injected": {}
        }
        assert stats["resilience"]["worker_restarts"] == 0
