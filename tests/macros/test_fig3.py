"""Figure 3 reproduction: parses of ``{int x; $ph1 $ph2 return(x);}``."""

from repro.figures import figure3_rows


EXPECTED = {
    ("decl", "decl"): (
        '(c-s (decl-list ((decl "int x") ph1 ph2)) '
        "(stmt-list ((r-s (exp (id x))))))"
    ),
    ("decl", "stmt"): (
        '(c-s (decl-list ((decl "int x") ph1)) '
        "(stmt-list (ph2 (r-s (exp (id x))))))"
    ),
    ("stmt", "stmt"): (
        '(c-s (decl-list ((decl "int x"))) '
        "(stmt-list (ph1 ph2 (r-s (exp (id x))))))"
    ),
    ("stmt", "decl"): "Syntactically Illegal Program",
}


class TestFigure3:
    def test_row_count(self):
        assert len(figure3_rows()) == 4

    def test_rows_match_paper(self):
        for t1, t2, sx in figure3_rows():
            assert sx == EXPECTED[(t1, t2)], f"row ({t1}, {t2}) diverges"

    def test_stmt_then_decl_is_illegal(self):
        rows = {(a, b): sx for a, b, sx in figure3_rows()}
        assert rows[("stmt", "decl")] == "Syntactically Illegal Program"

    def test_legal_rows_all_distinct(self):
        legal = [sx for _, _, sx in figure3_rows() if "Illegal" not in sx]
        assert len(set(legal)) == 3
