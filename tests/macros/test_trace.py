"""Expansion tracing and phase profiling (:mod:`repro.trace`)."""

import io
import json

from repro import MacroProcessor, Ms2Options
from repro.errors import Ms2Error
from repro.packages import loops
from repro.stats import PipelineStats
from repro.trace import PhaseProfiler, Tracer

TWICE = "syntax exp twice {| ( $$exp::e ) |} { return(`(($e) * 2)); }"
NESTING = (
    TWICE
    + "\nsyntax exp quad {| ( $$exp::e ) |}"
    "{ return(`(twice(twice($e)))); }"
)


class TestSpans:
    def test_spans_record_invocation_metadata(self):
        mp = MacroProcessor(options=Ms2Options(trace=True))
        mp.load(TWICE, "pkg.c")
        mp.expand_to_c("int x = twice(1 + 2);", "user.c")
        [span] = mp.tracer.roots
        assert span.macro == "twice"
        assert span.site.startswith("user.c:1:")
        assert span.pattern == "( $$exp::e )"
        assert span.arg_types == ("BinaryOp",)
        assert span.parse_mode == "compiled"
        assert span.cache == "miss"
        assert span.output_nodes > 0
        assert span.duration > 0
        assert span.error is None

    def test_nested_expansions_form_a_tree(self):
        mp = MacroProcessor(options=Ms2Options(trace=True))
        mp.load(NESTING)
        mp.expand_to_c("int x = quad(1);")
        [root] = mp.tracer.roots
        assert root.macro == "quad"
        assert [c.macro for c in root.children] == ["twice"]
        assert [c.macro for c in root.children[0].children] == ["twice"]
        depths = {s.macro: s.depth for s in mp.tracer.walk_spans()}
        assert depths["quad"] == 0

    def test_cache_hit_recorded(self):
        mp = MacroProcessor(options=Ms2Options(trace=True))
        mp.load(TWICE)
        mp.expand_to_c("int a = twice(q); int b = twice(q);")
        statuses = [s.cache for s in mp.tracer.roots]
        assert statuses == ["miss", "hit"]

    def test_interpreted_parse_mode_recorded(self):
        mp = MacroProcessor(
            options=Ms2Options(trace=True, compiled_patterns=False)
        )
        mp.load(TWICE)
        mp.expand_to_c("int x = twice(1);")
        [span] = mp.tracer.roots
        assert span.parse_mode == "interpreted"

    def test_failed_expansion_closes_span_with_error(self):
        mp = MacroProcessor(options=Ms2Options(trace=True))
        mp.load('syntax exp boom {| ( ) |} { error("no"); return(`(0)); }')
        try:
            mp.expand_to_c("int x = boom();")
        except Ms2Error:
            pass
        [span] = mp.tracer.roots
        assert span.error is not None and "no" in span.error
        assert "!!" in span.describe()

    def test_render_tree_indents_children(self):
        mp = MacroProcessor(options=Ms2Options(trace=True))
        mp.load(NESTING)
        mp.expand_to_c("int x = quad(1);")
        lines = mp.tracer.render_tree().splitlines()
        assert lines[0].startswith("quad @")
        assert lines[1].startswith("  twice @")
        assert lines[2].startswith("    twice @")

    def test_empty_tree_renders_placeholder(self):
        assert "no macro expansions" in Tracer().render_tree()

    def test_tracing_off_means_no_tracer(self):
        assert MacroProcessor().tracer is None


class TestHooksAndSinks:
    def test_hooks_see_start_end_events(self):
        events = []
        mp = MacroProcessor(
            options=Ms2Options(
                trace_hooks=(
                    lambda ev, span: events.append((ev, span.macro)),
                )
            )
        )
        mp.load(NESTING)
        mp.expand_to_c("int x = quad(1);")
        assert events[0] == ("start", "quad")
        assert events[-1] == ("end", "quad")
        # Children start after and end before their parent.
        assert ("start", "twice") in events and ("end", "twice") in events

    def test_error_event_emitted(self):
        events = []
        mp = MacroProcessor(
            options=Ms2Options(
                trace_hooks=(lambda ev, span: events.append(ev),)
            )
        )
        mp.load('syntax exp boom {| ( ) |} { error("no"); return(`(0)); }')
        try:
            mp.expand_to_c("int x = boom();")
        except Ms2Error:
            pass
        assert "error" in events

    def test_jsonl_stream_gets_one_line_per_span(self):
        sink = io.StringIO()
        mp = MacroProcessor(options=Ms2Options(trace_jsonl=sink))
        mp.load(NESTING)
        mp.expand_to_c("int x = quad(1);")
        mp.tracer.close()
        records = [json.loads(line) for line in
                   sink.getvalue().splitlines()]
        assert len(records) == 3
        assert all(r["event"] == "span" for r in records)
        # Completion order: children before parents.
        assert records[-1]["macro"] == "quad"
        assert records[-1]["parent"] is None

    def test_ring_buffer_bounds_retention(self):
        tracer = Tracer(ring_size=2)
        mp = MacroProcessor(options=Ms2Options(trace=True))
        mp.tracer = tracer
        mp.expander.tracer = tracer
        mp.load(TWICE)
        mp.expand_to_c(
            "int a = twice(1); int b = twice(2); int c = twice(3);"
        )
        assert len(tracer.ring) == 2


class TestPhaseProfiler:
    def test_phases_populate_stats(self):
        mp = MacroProcessor(options=Ms2Options(profile=True))
        loops.register(mp)
        mp.expand_to_c("void f(void) { unroll (2) {a();} }")
        phases = mp.stats.phase_seconds
        for name in ("scan", "dispatch", "invocation-parse",
                     "meta-eval", "template-fill", "print"):
            assert name in phases, name
            assert phases[name] >= 0.0
        assert mp.stats.phase_calls["meta-eval"] == 1

    def test_profile_off_records_nothing(self):
        mp = MacroProcessor()
        loops.register(mp)
        mp.expand_to_c("void f(void) { unroll (2) {a();} }")
        assert mp.stats.phase_seconds == {}
        assert "phases" not in mp.stats.as_dict()

    def test_add_accumulates(self):
        stats = PipelineStats()
        prof = PhaseProfiler(stats)
        prof.add("scan", 0.25)
        prof.add("scan", 0.5)
        assert stats.phase_seconds["scan"] == 0.75
        assert stats.phase_calls["scan"] == 2

    def test_profile_summary_lists_phases(self):
        mp = MacroProcessor(options=Ms2Options(profile=True))
        loops.register(mp)
        mp.expand_to_c("void f(void) { unroll (2) {a();} }")
        table = mp.stats.profile_summary()
        assert "meta-eval" in table
        assert "phases nest" in table

    def test_stats_json_includes_phase_table(self):
        mp = MacroProcessor(options=Ms2Options(profile=True))
        loops.register(mp)
        mp.expand_to_c("void f(void) { unroll (2) {a();} }")
        payload = mp.stats.as_dict()
        assert payload["phases"]["meta-eval"]["calls"] == 1


class TestCounters:
    def test_gensym_calls_counted(self):
        mp = MacroProcessor()
        mp.load(
            "syntax stmt g {| ( ) |}"
            "{ @id t = gensym(); return(`{{int $t = 0; use($t);}}); }"
        )
        mp.expand_to_c("void f(void) { g(); g(); }")
        assert mp.stats.gensym_calls == 2

    def test_hygiene_renames_counted(self):
        mp = MacroProcessor(options=Ms2Options(hygienic=True))
        mp.load(
            "syntax stmt s {| ( ) |}"
            "{ return(`{{int saved = 0; saved = saved + 1;}}); }"
        )
        mp.expand_to_c("void f(void) { s(); }")
        assert mp.stats.hygiene_renames == 1
        # The hygienic rename routes through gensym.
        assert mp.stats.gensym_calls >= 1
