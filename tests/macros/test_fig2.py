"""Figure 2 reproduction: the four parses of ``[int $y;]``."""

from repro.figures import FIGURE2_TYPES, figure2_rows


EXPECTED = {
    "init-declarator[]": "(declaration (int) y)",
    "init-declarator": "(declaration (int) (y))",
    "declarator": "(declaration (int) ((init-declarator y ())))",
    "identifier": (
        "(declaration (int) ((init-declarator (direct-declarator y) ())))"
    ),
}


class TestFigure2:
    def test_row_count(self):
        assert len(figure2_rows()) == 4

    def test_rows_match_paper(self):
        for label, sx in figure2_rows():
            assert sx == EXPECTED[label], f"row {label} diverges"

    def test_all_four_parses_distinct(self):
        parses = [sx for _, sx in figure2_rows()]
        assert len(set(parses)) == 4

    def test_row_order_matches_paper(self):
        labels = [label for label, _ in figure2_rows()]
        assert labels == [label for label, _ in FIGURE2_TYPES]
