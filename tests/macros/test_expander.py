"""Tests for the expansion engine: recursion, checks, statistics."""

import pytest

from repro import MacroProcessor
from repro.cast import nodes, stmts
from repro.errors import ExpansionError, MacroTypeError
from tests.conftest import assert_c_equal


class TestRecursiveExpansion:
    def test_template_invoking_earlier_macro(self, mp):
        mp.load(
            "syntax stmt inner {| ( ) |} { return(`{base();}); }\n"
            "syntax stmt outer {| ( ) |} { return(`{{pre(); inner();}}); }"
        )
        out = mp.expand_to_c("void f(void) { outer(); }")
        assert_c_equal(out, "void f(void) {{pre(); base();}}")

    def test_chain_of_three(self, mp):
        mp.load(
            "syntax stmt a {| ( ) |} { return(`{work();}); }\n"
            "syntax stmt b {| ( ) |} { return(`{{a();}}); }\n"
            "syntax stmt c {| ( ) |} { return(`{{b();}}); }"
        )
        out = mp.expand_to_c("void f(void) { c(); }")
        assert "work()" in out
        assert "a()" not in out

    def test_self_reference_is_inert(self, mp):
        # A macro's own keyword is not in scope while its body is
        # parsed (definitions register after parsing), so a template
        # mention of itself is a plain function call — self-recursive
        # macros are impossible by construction.
        mp.load(
            "syntax stmt boom {| ( ) |} { return(`{{boom();}}); }"
        )
        out = mp.expand_to_c("void f(void) { boom(); }")
        assert "boom()" in out
        assert mp.expansion_count == 1

    def test_runaway_expansion_depth_guard(self, mp):
        # Drive expand_invocation directly with a hand-built cycle to
        # exercise the depth guard.
        from repro.cast import nodes as n

        mp.load("syntax stmt leaf {| ( ) |} { return(`{l();}); }")
        defn = mp.table.lookup("leaf")
        # Make the macro's (already checked) body return an invocation
        # of itself by patching the compiled definition.
        inv = n.MacroInvocation("leaf", [], defn)
        import repro.cast.stmts as s

        defn.body = s.CompoundStmt([], [s.ReturnStmt(None)])

        class Loop:
            name = "leaf"
            ret_spec = "stmt"
            returns_list = False
            body = None
            pattern = defn.pattern

        # The cycle is injected by stubbing call_macro, so the
        # definition must take the interpreter path, not its
        # compiled body.
        defn.compiled_body = False
        with pytest.raises(ExpansionError):
            # Re-expanding an invocation whose expansion contains
            # itself must hit the depth guard, not hang.
            original = mp.expander.interpreter.call_macro

            def fake_call(definition, bindings):
                return n.MacroInvocation("leaf", [], defn)

            mp.expander.interpreter.call_macro = fake_call
            try:
                mp.expander.expand_invocation(inv)
            finally:
                mp.expander.interpreter.call_macro = original

    def test_expansion_count_tracked(self, mp):
        mp.load(
            "syntax stmt one {| ( ) |} { return(`{w();}); }"
        )
        mp.expand_to_c("void f(void) { one(); one(); one(); }")
        assert mp.expansion_count == 3


class TestReturnChecks:
    def test_list_macro_must_return_list(self, mp):
        mp.load(
            "syntax decl gen[] {| $$id::n ; |} { return(list(`[int $n;])); }"
        )
        out = mp.expand_to_c("gen counter;")
        assert_c_equal(out, "int counter;")

    def test_scalar_macro_returning_list_rejected_statically(self, mp):
        # Returning a list from a macro declared to return one stmt is
        # caught by the definition-time checker.
        with pytest.raises(MacroTypeError):
            mp.load(
                "syntax stmt bad {| ( ) |}"
                "{ return(list(`{a();}, `{b();})); }"
            )

    def test_body_must_return(self, mp):
        with pytest.raises(MacroTypeError) as exc:
            mp.load("syntax stmt nothing {| ( ) |} { 1 + 1; }")
        assert "return" in str(exc.value)

    def test_runtime_no_return_path(self, mp):
        # Statically has a return, but the taken path doesn't reach it.
        mp.load(
            "syntax stmt maybe {| $$num::n |}"
            "{ if (num_value(n) > 100) return(`{big();}); }"
        )
        from repro.errors import MetaInterpError

        with pytest.raises(MetaInterpError):
            mp.expand_to_c("void f(void) { maybe 3; }")


class TestListResults:
    def test_decl_list_spliced_at_top_level(self, mp):
        mp.load(
            "syntax decl three[] {| $$id::n ; |}"
            "{ return(list(`[int $n;], `[long $(concat_ids(n, n));],"
            "  `[char tail;])); }"
        )
        unit = mp.expand_to_ast("three x;")
        assert len(unit.items) == 3

    def test_empty_decl_list_vanishes(self, mp):
        mp.load(
            "syntax decl nothing[] {| $$id::n ; |} { return(list()); }"
        )
        unit = mp.expand_to_ast("nothing x;\nint keep;")
        assert len(unit.items) == 1

    def test_stmt_list_macro_wrapped_at_single_position(self, mp):
        mp.load(
            "syntax stmt both[] {| ( ) |}"
            "{ return(list(`{a();}, `{b();})); }"
        )
        unit = mp.expand_to_ast("void f(void) { if (c) both(); }")
        then = unit.items[0].body.stmts[0].then
        assert isinstance(then, stmts.CompoundStmt)
        assert len(then.stmts) == 2


class TestHygieneMarks:
    def test_template_nodes_marked(self, mp):
        mp.load("syntax stmt m {| ( ) |} { return(`{tmpl();}); }")
        unit = mp.expand_to_ast("void f(void) { m(); }")
        stmt = unit.items[0].body.stmts[0]
        assert stmt.mark is not None

    def test_substituted_user_code_unmarked(self, mp):
        mp.load(
            "syntax stmt m {| $$stmt::body |} { return(`{{pre(); $body;}}); }"
        )
        unit = mp.expand_to_ast("void f(void) { m user(); }")
        inner = unit.items[0].body.stmts[0]
        pre, user = inner.stmts
        assert pre.mark is not None
        assert user.mark is None

    def test_distinct_expansions_get_distinct_marks(self, mp):
        mp.load("syntax stmt m {| ( ) |} { return(`{t();}); }")
        unit = mp.expand_to_ast("void f(void) { m(); m(); }")
        marks = [s.mark for s in unit.items[0].body.stmts]
        assert marks[0] != marks[1]


class TestMetaState:
    def test_metadcl_accumulation_across_invocations(self, mp):
        mp.load(
            "metadcl int counter;\n"
            "syntax exp next {| ( ) |}"
            "{ counter = counter + 1; return(make_num(counter)); }"
        )
        out = mp.expand_to_c("void f(void) { a = next(); b = next(); }")
        assert "a = 1" in out
        assert "b = 2" in out

    def test_metadcl_initializer_runs(self, mp):
        mp.load(
            "metadcl int base = 10;\n"
            "syntax exp based {| ( ) |} { return(make_num(base)); }"
        )
        out = mp.expand_to_c("void f(void) { x = based(); }")
        assert "x = 10" in out

    def test_meta_function_called_from_macro(self, mp):
        mp.load(
            "@stmt bracket(@stmt s) { return(`{{enter(); $s; leave();}}); }\n"
            "syntax stmt traced {| $$stmt::body |}"
            "{ return(bracket(body)); }"
        )
        out = mp.expand_to_c("void f(void) { traced work(); }")
        assert_c_equal(out, "void f(void) {{enter(); work(); leave();}}")


class TestDepthCounterRegression:
    """The depth counter must return to zero after an overflow is
    caught — the old reset-then-raise pattern drove it negative (each
    enclosing frame's ``finally`` decrement fired after the reset),
    silently granting later expansions extra headroom."""

    def _overflow(self, mp):
        from repro.cast import nodes as n

        if mp.table.lookup("leaf") is None:
            mp.load("syntax stmt leaf {| ( ) |} { return(`{l();}); }")
        if mp.cache is not None:
            # A cached leaf() expansion would short-circuit the cycle.
            mp.cache.clear()
        defn = mp.table.lookup("leaf")
        # Stubbed call_macro requires the interpreter path.
        defn.compiled_body = False
        inv = n.MacroInvocation("leaf", [], defn)
        original = mp.expander.interpreter.call_macro

        def fake_call(definition, bindings):
            return n.MacroInvocation("leaf", [], defn)

        mp.expander.interpreter.call_macro = fake_call
        try:
            with pytest.raises(ExpansionError):
                mp.expander.expand_invocation(inv)
        finally:
            mp.expander.interpreter.call_macro = original

    def test_depth_balanced_after_overflow(self, mp):
        self._overflow(mp)
        assert mp.expander._depth == 0

    def test_reexpansion_after_overflow_works(self, mp):
        # After a caught overflow, an ordinary expansion must still
        # succeed, and a *second* runaway must hit the guard at the
        # same depth (no negative-counter headroom).
        self._overflow(mp)
        out = mp.expand_to_c("void f(void) { leaf(); }")
        assert "l()" in out
        assert mp.expander._depth == 0
        self._overflow(mp)
        assert mp.expander._depth == 0
