"""Tests for backquote templates and placeholder-token parsing."""

import pytest

from repro.asttypes.types import EXP, ID, STMT, TYPE_SPEC, list_of, prim
from repro.cast import decls, nodes, render_c, stmts
from repro.errors import ParseError
from repro.figures import parse_template_fragment
from repro.parser.core import Parser
from tests.conftest import assert_c_equal


def parse_backquote(source: str, bindings=None):
    """Parse a backquote expression in meta mode."""
    parser = Parser(source)
    env = parser.global_type_env.child()
    for name, asttype in (bindings or {}).items():
        env.bind(name, asttype)
    with parser._meta(True), parser._scoped_env(env):
        return parser.parse_expression()


class TestForms:
    def test_expression_form(self):
        bq = parse_backquote("`(1 + 2)")
        assert bq.form == "exp"
        assert isinstance(bq.template, nodes.BinaryOp)

    def test_statement_form_single_unwraps(self):
        bq = parse_backquote("`{return;}")
        assert bq.form == "stmt"
        assert isinstance(bq.template, stmts.ReturnStmt)

    def test_statement_form_multiple_is_compound(self):
        bq = parse_backquote("`{a(); b();}")
        assert isinstance(bq.template, stmts.CompoundStmt)

    def test_statement_form_double_brace_forces_compound(self):
        bq = parse_backquote("`{{a();}}")
        assert isinstance(bq.template, stmts.CompoundStmt)

    def test_declaration_form(self):
        bq = parse_backquote("`[int x;]")
        assert bq.form == "decl"
        assert isinstance(bq.template, decls.Declaration)

    def test_declaration_form_function(self):
        bq = parse_backquote("`[int f(void) {return 0;}]")
        assert isinstance(bq.template, decls.FunctionDef)

    def test_declaration_form_array_brackets_ok(self):
        # Inner '[' ']' must not terminate the '[...]' template.
        bq = parse_backquote("`[int a[10];]")
        assert isinstance(bq.template, decls.Declaration)

    def test_general_pattern_form(self):
        bq = parse_backquote("`{| +/, exp :: 1, 2, 3 |}")
        assert bq.form == "pattern"
        assert isinstance(bq.template, list)
        assert len(bq.template) == 3
        assert bq.asttype == list_of(EXP)

    def test_bad_opener_rejected(self):
        with pytest.raises(ParseError):
            parse_backquote("`< x >")


class TestPlaceholders:
    def test_identifier_placeholder(self):
        bq = parse_backquote("`($x + 1)", {"x": ID})
        left = bq.template.left
        assert isinstance(left, nodes.PlaceholderExpr)
        assert left.asttype == ID

    def test_parenthesized_expression_placeholder(self):
        bq = parse_backquote(
            "`($(concat_ids(a, b)))", {"a": ID, "b": ID}
        )
        ph = bq.template
        assert isinstance(ph, nodes.PlaceholderExpr)
        assert isinstance(ph.meta_expr, nodes.Call)

    def test_statement_placeholder(self):
        bq = parse_backquote("`{f(); $s; g();}", {"s": STMT})
        middle = bq.template.stmts[1]
        assert isinstance(middle, stmts.PlaceholderStmt)

    def test_statement_list_placeholder(self):
        bq = parse_backquote("`{{$body}}", {"body": list_of(STMT)})
        inner = bq.template.stmts[0]
        assert isinstance(inner, stmts.PlaceholderStmt)
        assert inner.asttype == list_of(STMT)

    def test_type_spec_placeholder(self):
        bq = parse_backquote("`{{$t x = 1; use(x);}}", {"t": TYPE_SPEC})
        decl = bq.template.decls[0]
        assert isinstance(decl.specs.type_spec, type(decl.specs.type_spec))

    def test_argument_list_placeholder(self):
        bq = parse_backquote("`(f($args))", {"args": list_of(EXP)})
        call = bq.template
        assert len(call.args) == 1
        assert isinstance(call.args[0], nodes.PlaceholderExpr)

    def test_placeholder_requires_ident_or_parens(self):
        with pytest.raises(ParseError):
            parse_backquote("`($42)")

    def test_undeclared_placeholder_rejected(self):
        from repro.errors import MacroTypeError

        with pytest.raises(MacroTypeError):
            parse_backquote("`($nope)")

    def test_wrong_type_rejected_at_definition_time(self):
        # This is the core guarantee: the macro writer's error is
        # caught when the template is PARSED, not when it runs.
        with pytest.raises(ParseError):
            parse_backquote("`(1 + $s)", {"s": STMT})


class TestFigureBehaviour:
    def test_enum_splice_template(self):
        # The separator-free list splicing example from section 2.
        tree = parse_template_fragment(
            "decl", "enum color $ids;", {"ids": list_of(ID)}
        )
        assert isinstance(tree, decls.Declaration)
        ph = tree.init_declarators[0]
        assert isinstance(ph, decls.PlaceholderInitDeclarator)

    def test_decl_vs_stmt_boundary(self):
        tree = parse_template_fragment(
            "stmt", "{int x; $d $s f();}",
            {"d": prim("decl"), "s": STMT},
        )
        assert len(tree.decls) == 2
        assert len(tree.stmts) == 2

    def test_printing_templates_shows_placeholders(self):
        bq = parse_backquote("`($x + 1)", {"x": ID})
        assert render_c(bq) == "`($x + 1)"


class TestNestedTemplates:
    def test_backquote_inside_placeholder(self):
        # $(map((@id i; `{...}), xs)) — a template within a
        # placeholder within a template.
        bq = parse_backquote(
            "`{{$(map((@id i; `{case $i: break;}), xs))}}",
            {"xs": list_of(ID)},
        )
        ph = bq.template.stmts[0]
        assert isinstance(ph, stmts.PlaceholderStmt)
        assert ph.asttype == list_of(STMT)
