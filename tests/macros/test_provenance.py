"""Expansion provenance: backtraces on errors, annotated output.

Synthesized nodes carry an :class:`~repro.provenance.ExpandedLocation`
recording the chain of invocation sites that produced them, so errors
inside macro-generated code point at user source — not ``<synthetic>``
— and the C printer can annotate generated code with its origin.
"""

import pytest

from repro import MacroProcessor, Ms2Options
from repro.errors import Ms2Error
from repro.provenance import (
    ExpandedLocation,
    ExpansionSite,
    expansion_chain,
    format_expansion_backtrace,
    provenance_of,
    strip_expansion,
    user_site,
)
from repro.cast.base import SourceLocation, walk

NESTED = """
syntax exp inner {| ( ) |} { error("inner exploded"); return(`(0)); }
syntax exp outer {| ( ) |} { return(`(inner() + 1)); }
"""

TWICE = "syntax exp twice {| ( $$exp::e ) |} { return(`(($e) * 2)); }"


class TestExpandedLocation:
    def test_chain_prepends_innermost_frame(self):
        base = SourceLocation(3, 7, 0, "f.c")
        chain = expansion_chain("m", base)
        assert len(chain) == 1
        assert chain[0].macro == "m"
        assert chain[0].location == base

    def test_chain_composes_through_expanded_location(self):
        user = SourceLocation(9, 1, 0, "f.c")
        outer = expansion_chain("outer", user)
        inner_site = ExpandedLocation(2, 5, 0, "pkg.c", expanded_from=outer)
        chain = expansion_chain("inner", inner_site)
        assert [frame.macro for frame in chain] == ["inner", "outer"]
        assert chain[-1].location == user

    def test_strip_expansion_returns_plain_location(self):
        loc = ExpandedLocation(
            1, 2, 0, "f.c",
            expanded_from=(ExpansionSite("m", SourceLocation(3, 4, 0, "g.c")),),
        )
        plain = strip_expansion(loc)
        assert type(plain) is SourceLocation
        assert (plain.line, plain.column, plain.filename) == (1, 2, "f.c")

    def test_user_site_is_outermost_frame(self):
        user = SourceLocation(9, 1, 0, "f.c")
        outer = expansion_chain("outer", user)
        inner = expansion_chain(
            "inner", ExpandedLocation(2, 5, 0, "pkg.c", expanded_from=outer)
        )
        assert user_site(ExpandedLocation(0, 0, 0, "x", expanded_from=inner)) \
            == user

    def test_format_backtrace(self):
        frames = expansion_chain("m", SourceLocation(3, 7, 0, "f.c"))
        text = format_expansion_backtrace(frames)
        assert "expanded from m at f.c:3:7" in text


class TestRestamping:
    def test_template_nodes_carry_invocation_chain(self):
        mp = MacroProcessor()
        mp.load(TWICE)
        unit = mp.expand_to_ast("int x = twice(1);", "user.c")
        init = unit.items[0].init_declarators[0].init
        frames = provenance_of(init.loc)
        assert len(frames) == 1
        assert frames[0].macro == "twice"
        assert frames[0].location.filename == "user.c"
        # Base coordinates stay at the invocation site.
        assert init.loc.line == 1

    def test_user_actuals_keep_their_location(self):
        mp = MacroProcessor()
        mp.load(TWICE)
        unit = mp.expand_to_ast("int x = twice(a_var);", "user.c")
        init = unit.items[0].init_declarators[0].init
        idents = [
            n for n in walk(init)
            if type(n).__name__ == "Identifier" and n.name == "a_var"
        ]
        assert idents
        # The spliced actual is not macro-generated: no backtrace.
        assert provenance_of(idents[0].loc) == ()

    def test_nested_expansion_extends_chain(self):
        mp = MacroProcessor()
        mp.load(
            TWICE
            + "\nsyntax exp quad {| ( $$exp::e ) |}"
            "{ return(`(twice(twice($e)))); }"
        )
        unit = mp.expand_to_ast("int x = quad(1);", "user.c")
        init = unit.items[0].init_declarators[0].init
        chains = [provenance_of(n.loc) for n in walk(init)]
        deepest = max(chains, key=len)
        assert [f.macro for f in deepest] == ["twice", "quad"]
        assert deepest[-1].location.filename == "user.c"


class TestErrorBacktrace:
    def test_nested_failure_reports_full_chain(self):
        """Regression: an error raised while expanding a macro that
        another macro's template invoked must show both frames and end
        at the user's source line — never at ``<synthetic>``."""
        mp = MacroProcessor()
        mp.load(NESTED, "pkg.c")
        with pytest.raises(Ms2Error) as info:
            mp.expand_to_c("void f(void) { int x; x = outer(); }", "user.c")
        text = str(info.value)
        assert "inner exploded" in text
        assert "expanded from inner at" in text
        assert "expanded from outer at user.c:1" in text
        assert text.count("expanded from") >= 2
        assert "<synthetic>" not in text

    def test_single_level_failure_reports_one_frame(self):
        mp = MacroProcessor()
        mp.load(
            'syntax exp boom {| ( ) |} { error("bang"); return(`(0)); }',
            "pkg.c",
        )
        with pytest.raises(Ms2Error) as info:
            mp.expand_to_c("int x = boom();", "user.c")
        text = str(info.value)
        assert "bang" in text
        assert "expanded from boom at user.c:1" in text
        assert "<synthetic>" not in text

    def test_clean_expansion_has_no_backtrace_noise(self):
        mp = MacroProcessor()
        mp.load(TWICE)
        out = mp.expand_to_c("int x = twice(3);")
        assert "expanded from" not in out


class TestAnnotatedOutput:
    def test_generated_code_gets_provenance_comment(self):
        mp = MacroProcessor(options=Ms2Options(annotate=True))
        mp.load(
            "syntax stmt bump {| ( ) |} { return(`{n = n + 1;}); }",
            "pkg.c",
        )
        out = mp.expand_to_c("void f(void) { int n; bump(); }", "user.c")
        assert "/* <- bump @ user.c:1 */" in out
        assert '#line 1 "user.c"' in out

    def test_annotate_off_is_clean(self):
        mp = MacroProcessor()
        mp.load("syntax stmt bump {| ( ) |} { return(`{n = n + 1;}); }")
        out = mp.expand_to_c("void f(void) { int n; bump(); }")
        assert "/* <-" not in out
        assert "#line" not in out

    def test_annotated_output_still_parses(self):
        """Annotation must not corrupt the C text (comments only)."""
        mp = MacroProcessor(options=Ms2Options(annotate=True))
        mp.load(TWICE)
        out = mp.expand_to_c("int x = twice(3);", "user.c")
        stripped = "\n".join(
            line for line in out.splitlines()
            if not line.startswith("#line")
        )
        # Reparse the annotated output with a fresh processor.
        MacroProcessor().expand_to_c(stripped)
