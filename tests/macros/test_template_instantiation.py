"""Direct tests of template instantiation (macros/template.py)."""

import pytest

from repro.asttypes.types import EXP, ID, STMT, list_of, prim
from repro.cast import ctypes, decls, nodes, stmts
from repro.errors import ExpansionError
from repro.figures import parse_template_fragment
from repro.macros.template import instantiate
from repro.meta.frames import NULL
from tests.macros.test_backquote import parse_backquote


def run(template_src: str, bindings: dict, values: dict):
    """Parse a backquote in meta mode and instantiate it."""
    bq = parse_backquote(template_src, bindings)
    return instantiate(
        bq.template,
        evalfn=lambda expr: values[expr.name],
        mark=77,
    )


class TestScalarSubstitution:
    def test_expression_hole(self):
        result = run("`($x + 1)", {"x": EXP}, {"x": nodes.Identifier("q")})
        assert result == nodes.BinaryOp(
            "+", nodes.Identifier("q"), nodes.IntLit(1)
        )

    def test_statement_hole(self):
        body = stmts.ExprStmt(nodes.Call(nodes.Identifier("w"), []))
        result = run("`{pre(); $s;}", {"s": STMT}, {"s": body})
        assert result.stmts[1] == body

    def test_expression_becomes_statement(self):
        # An exp value standing at a statement position is wrapped.
        value = nodes.Identifier("e")
        bq = parse_backquote("`{{$x;}}", {"x": EXP})
        result = instantiate(bq.template, lambda _: value, mark=1)
        assert isinstance(result.stmts[0], stmts.ExprStmt)

    def test_scalar_values_become_literals(self):
        result = run("`(f($n))", {"n": prim("num")}, {"n": 5})
        assert result.args[0] == nodes.IntLit(5)

    def test_string_values_become_string_literals(self):
        bq = parse_backquote('`(f($s))', {"s": ID})
        result = instantiate(bq.template, lambda _: "text", mark=1)
        assert result.args[0] == nodes.StringLit("text")


class TestListSplicing:
    def test_statement_list(self):
        items = [
            stmts.ExprStmt(nodes.Identifier(n)) for n in ("a", "b", "c")
        ]
        result = run(
            "`{{first(); $body; last();}}",
            {"body": list_of(STMT)},
            {"body": items},
        )
        assert len(result.stmts) == 5

    def test_argument_list(self):
        args = [nodes.Identifier("p"), nodes.Identifier("q")]
        result = run("`(f($args))", {"args": list_of(EXP)}, {"args": args})
        assert result.args == args

    def test_empty_list_vanishes(self):
        result = run(
            "`{{before(); $body; after();}}",
            {"body": list_of(STMT)},
            {"body": []},
        )
        assert len(result.stmts) == 2

    def test_enum_identifier_list_becomes_enumerators(self):
        tree = parse_template_fragment(
            "decl", "enum e {$ids};", {"ids": list_of(ID)}
        )
        result = instantiate(
            tree,
            lambda _: [nodes.Identifier("x"), nodes.Identifier("y")],
            mark=1,
        )
        enums = result.specs.type_spec.enumerators
        assert enums == [ctypes.Enumerator("x"), ctypes.Enumerator("y")]

    def test_init_declarator_ids_spliced(self):
        # The paper's 'enum color $ids;' separator-free splice.
        tree = parse_template_fragment(
            "decl", "enum color $ids;", {"ids": list_of(ID)}
        )
        result = instantiate(
            tree,
            lambda _: [nodes.Identifier("red"), nodes.Identifier("blue")],
            mark=1,
        )
        names = [
            i.declarator.name for i in result.init_declarators
        ]
        assert names == ["red", "blue"]


class TestDeclaratorAdaptation:
    def test_identifier_becomes_name_declarator(self):
        tree = parse_template_fragment(
            "decl", "int $y;", {"y": ID}
        )
        result = instantiate(tree, lambda _: nodes.Identifier("v"), mark=1)
        declarator = result.init_declarators[0].declarator
        assert declarator == decls.NameDeclarator("v")

    def test_declarator_value_used_directly(self):
        pointer = decls.PointerDeclarator(decls.NameDeclarator("p"), [])
        tree = parse_template_fragment(
            "decl", "int $y;", {"y": prim("declarator")}
        )
        result = instantiate(tree, lambda _: pointer, mark=1)
        assert result.init_declarators[0].declarator == pointer

    def test_init_declarator_list(self):
        items = [
            decls.InitDeclarator(decls.NameDeclarator("a"), nodes.IntLit(1)),
            decls.InitDeclarator(decls.NameDeclarator("b"), None),
        ]
        tree = parse_template_fragment(
            "decl", "int $y;", {"y": list_of(prim("init_declarator"))}
        )
        result = instantiate(tree, lambda _: items, mark=1)
        assert result.init_declarators == items


class TestMarksAndAliasing:
    def test_spine_nodes_get_the_mark(self):
        result = run("`(1 + $x)", {"x": EXP}, {"x": nodes.Identifier("u")})
        assert result.mark == 77
        assert result.left.mark == 77

    def test_substituted_values_keep_their_mark(self):
        user = nodes.Identifier("u")  # mark None
        result = run("`(1 + $x)", {"x": EXP}, {"x": user})
        assert result.right.mark is None

    def test_values_are_cloned_not_aliased(self):
        user = nodes.Identifier("u")
        result = run("`($x + $x)", {"x": EXP}, {"x": user})
        assert result.left == result.right
        assert result.left is not result.right
        assert result.left is not user

    def test_template_reuse_is_safe(self):
        bq = parse_backquote("`(g($x))", {"x": EXP})
        one = instantiate(bq.template, lambda _: nodes.Identifier("a"), mark=1)
        two = instantiate(bq.template, lambda _: nodes.Identifier("b"), mark=2)
        assert one.args[0].name == "a"
        assert two.args[0].name == "b"


class TestErrors:
    def test_null_value_is_expansion_error(self):
        bq = parse_backquote("`(f($x))", {"x": EXP})
        with pytest.raises(ExpansionError) as exc:
            instantiate(bq.template, lambda _: NULL, mark=1)
        assert "NULL" in str(exc.value)

    def test_list_in_scalar_position_rejected(self):
        bq = parse_backquote("`{if ($c) t();}", {"c": EXP})
        with pytest.raises(ExpansionError):
            instantiate(
                bq.template,
                lambda _: [nodes.Identifier("a"), nodes.Identifier("b")],
                mark=1,
            )
