"""Tests for the hygienic-expansion extension (paper section 5)."""

from repro import MacroProcessor, Ms2Options
from repro.cast import decls, nodes
from repro.cast.base import walk


CAPTURING = """
syntax stmt save_restore {| $$id::var $$stmt::body |}
{
  return(`{{int saved = $var;
            $body;
            $var = saved;}});
}
"""


def declared_names(unit) -> list[str]:
    return [
        n.name
        for n in walk(unit)
        if isinstance(n, decls.NameDeclarator)
    ]


class TestUnhygienicBaseline:
    def test_capture_happens_without_hygiene(self):
        mp = MacroProcessor(options=Ms2Options(hygienic=False))
        mp.load(CAPTURING)
        # User body references its own 'saved' — captured!
        unit = mp.expand_to_ast(
            "void f(int saved) { save_restore x {saved = saved + x;} }"
        )
        names = declared_names(unit)
        assert "saved" in names  # template's binder kept its name


class TestHygienicMode:
    def test_template_binder_renamed(self):
        mp = MacroProcessor(options=Ms2Options(hygienic=True))
        mp.load(CAPTURING)
        unit = mp.expand_to_ast(
            "void f(int saved) { save_restore x {saved = saved + x;} }"
        )
        inner = unit.items[0].body.stmts[0]
        binder = inner.decls[0].init_declarators[0].declarator.name
        assert binder != "saved"

    def test_template_references_follow_binder(self):
        mp = MacroProcessor(options=Ms2Options(hygienic=True))
        mp.load(CAPTURING)
        unit = mp.expand_to_ast(
            "void f(int saved) { save_restore x {w();} }"
        )
        inner = unit.items[0].body.stmts[0]
        binder = inner.decls[0].init_declarators[0].declarator.name
        # The restore statement must use the renamed binder.
        restore = inner.stmts[-1]
        assert restore.expr.value.name == binder

    def test_user_code_untouched(self):
        mp = MacroProcessor(options=Ms2Options(hygienic=True))
        mp.load(CAPTURING)
        unit = mp.expand_to_ast(
            "void f(int saved) { save_restore x {saved = saved + 1;} }"
        )
        inner = unit.items[0].body.stmts[0]
        user_body = inner.stmts[0]
        # The user's own 'saved' references are NOT renamed.
        user_idents = [
            n.name for n in walk(user_body)
            if isinstance(n, nodes.Identifier)
        ]
        assert "saved" in user_idents

    def test_placeholder_substituted_var_not_renamed(self):
        mp = MacroProcessor(options=Ms2Options(hygienic=True))
        mp.load(CAPTURING)
        unit = mp.expand_to_ast(
            "void f(int x) { save_restore x {g();} }"
        )
        inner = unit.items[0].body.stmts[0]
        init = inner.decls[0].init_declarators[0].init
        assert init == nodes.Identifier("x")

    def test_nested_expansions_get_distinct_names(self):
        mp = MacroProcessor(options=Ms2Options(hygienic=True))
        mp.load(CAPTURING)
        unit = mp.expand_to_ast(
            "void f(void) { save_restore a { save_restore b {w();} } }"
        )
        names = [n for n in declared_names(unit) if n.startswith("__")]
        assert len(names) == 2
        assert names[0] != names[1]

    def test_gensym_names_not_rerenamed(self):
        mp = MacroProcessor(options=Ms2Options(hygienic=True))
        mp.load(
            "syntax stmt g {| ( ) |}"
            "{ @id t = gensym(); return(`{{int $t = 0; use($t);}}); }"
        )
        unit = mp.expand_to_ast("void f(void) { g(); }")
        inner = unit.items[0].body.stmts[0]
        binder = inner.decls[0].init_declarators[0].declarator.name
        use = inner.stmts[0].expr.args[0].name
        assert binder == use
