"""Tests for the pattern language parser."""

import pytest

from repro.asttypes.types import ListType, TupleType, prim
from repro.errors import MacroSyntaxError
from repro.macros.pattern import (
    ParamElement,
    SpecList,
    SpecOptional,
    SpecPrim,
    SpecTuple,
    TokenElement,
    parse_pattern_text,
)


class TestElements:
    def test_single_param(self):
        p = parse_pattern_text("$$stmt::body")
        assert len(p.elements) == 1
        element = p.elements[0]
        assert isinstance(element, ParamElement)
        assert element.name == "body"
        assert element.pspec == SpecPrim("stmt")

    def test_literal_tokens(self):
        p = parse_pattern_text("( $$exp::e )")
        assert isinstance(p.elements[0], TokenElement)
        assert p.elements[0].text == "("
        assert isinstance(p.elements[2], TokenElement)

    def test_keyword_as_buzz_token(self):
        p = parse_pattern_text("$$id::name default $$id::d ;")
        texts = [e.text for e in p.elements if isinstance(e, TokenElement)]
        assert texts == ["default", ";"]

    def test_all_primitive_specs(self):
        for name in ("id", "exp", "stmt", "decl", "num", "type_spec",
                     "declarator", "init_declarator"):
            p = parse_pattern_text(f"$${name}::x")
            assert p.elements[0].pspec == SpecPrim(name)


class TestRepetition:
    def test_plus(self):
        p = parse_pattern_text("$$+stmt::body }")
        pspec = p.elements[0].pspec
        assert isinstance(pspec, SpecList)
        assert pspec.at_least_one
        assert pspec.separator is None

    def test_star(self):
        p = parse_pattern_text("$$*stmt::body }")
        pspec = p.elements[0].pspec
        assert not pspec.at_least_one

    def test_plus_with_separator(self):
        p = parse_pattern_text("$$+/, id::ids")
        pspec = p.elements[0].pspec
        assert pspec.separator == ","
        assert pspec.element == SpecPrim("id")

    def test_star_with_separator(self):
        p = parse_pattern_text("$$*/; exp::es")
        pspec = p.elements[0].pspec
        assert pspec.separator == ";"
        assert not pspec.at_least_one

    def test_binding_type_is_list(self):
        p = parse_pattern_text("$$+/, id::ids")
        assert p.binding_types() == {"ids": ListType(prim("id"))}


class TestOptional:
    def test_unguarded(self):
        p = parse_pattern_text("$$?num::n ;")
        pspec = p.elements[0].pspec
        assert isinstance(pspec, SpecOptional)
        assert pspec.guard is None

    def test_guarded(self):
        p = parse_pattern_text("$$? step exp::stride {")
        pspec = p.elements[0].pspec
        assert pspec.guard == "step"
        assert pspec.element == SpecPrim("exp")

    def test_binding_type_is_element_type(self):
        p = parse_pattern_text("$$? step exp::stride {")
        assert p.binding_types()["stride"] == prim("exp")


class TestTuples:
    def test_tuple_pspec(self):
        p = parse_pattern_text("$$( $$id::k = $$exp::v )::pair")
        pspec = p.elements[0].pspec
        assert isinstance(pspec, SpecTuple)
        assert pspec.binding_type() == TupleType(
            (("k", prim("id")), ("v", prim("exp")))
        )

    def test_repetition_of_tuples(self):
        p = parse_pattern_text("$$+/, ( $$id::k = $$exp::v )::pairs")
        pspec = p.elements[0].pspec
        assert isinstance(pspec, SpecList)
        assert isinstance(pspec.element, SpecTuple)
        assert isinstance(p.binding_types()["pairs"], ListType)


class TestErrors:
    def test_empty_pattern_rejected(self):
        with pytest.raises(MacroSyntaxError):
            parse_pattern_text("")

    def test_missing_colons(self):
        with pytest.raises(MacroSyntaxError):
            parse_pattern_text("$$stmt body")

    def test_missing_name(self):
        with pytest.raises(MacroSyntaxError):
            parse_pattern_text("$$stmt:: ;")

    def test_bad_specifier(self):
        with pytest.raises(MacroSyntaxError):
            parse_pattern_text("$$statement::x")

    def test_duplicate_parameter_names(self):
        p = parse_pattern_text("$$id::x $$exp::x")
        with pytest.raises(MacroSyntaxError):
            p.binding_types()

    def test_unclosed_tuple(self):
        with pytest.raises(MacroSyntaxError):
            parse_pattern_text("$$( $$id::k ::pair")

    def test_source_text_round_trip(self):
        p = parse_pattern_text("$$id::name { $$+/, id::ids } ;")
        # Re-parsing the rendered pattern gives the same structure.
        again = parse_pattern_text(str(p))
        assert again.elements == p.elements
