"""Tests for pattern-driven invocation parsing (interpreted engine)."""

import pytest

from repro import MacroProcessor
from repro.cast import nodes, stmts
from repro.errors import ParseError


def define_and_invoke(mp, definition: str, program: str):
    """Register macros, then expand a program using them."""
    mp.load(definition)
    return mp.expand_to_ast(program)


class TestLiteralTokens:
    def test_buzz_tokens_must_match(self, mp):
        mp.load(
            "syntax stmt pair {| ( $$exp::a , $$exp::b ) |}"
            "{ return(`{use($a, $b);}); }"
        )
        with pytest.raises(ParseError) as exc:
            mp.expand_to_ast("void f(void) { pair (1; 2); }")
        assert "expected" in str(exc.value)

    def test_keyword_buzz_token(self, mp):
        mp.load(
            "syntax stmt upto {| $$id::v to $$exp::hi $$stmt::body |}"
            "{ return(`{while ($v <= $hi) $body;}); }"
        )
        unit = mp.expand_to_ast("void f(void) { upto i to 10 {work();} }")
        body = unit.items[0].body
        assert isinstance(body.stmts[0], stmts.WhileStmt)


class TestParameterKinds:
    def test_exp_parameter_stops_at_comma(self, mp):
        mp.load(
            "syntax stmt pair {| ( $$exp::a , $$exp::b ) |}"
            "{ return(`{use($a, $b);}); }"
        )
        unit = mp.expand_to_ast("void f(void) { pair (x + 1, y * 2); }")
        call = unit.items[0].body.stmts[0].expr
        assert isinstance(call.args[0], nodes.BinaryOp)

    def test_num_parameter(self, mp):
        mp.load(
            "syntax stmt rep {| $$num::n $$stmt::body |}"
            "{ if (num_value(n) > 0) return(`{while (count < $n) $body;});"
            "  return(`{;}); }"
        )
        unit = mp.expand_to_ast("void f(void) { rep 3 {work();} }")
        assert isinstance(unit.items[0].body.stmts[0], stmts.WhileStmt)

    def test_num_parameter_rejects_ident(self, mp):
        mp.load(
            "syntax stmt rep {| $$num::n |} { return(`{use($n);}); }"
        )
        with pytest.raises(ParseError):
            mp.expand_to_ast("void f(void) { rep x; }")

    def test_type_spec_parameter(self, mp):
        mp.load(
            "syntax stmt declare_zero {| $$type_spec::t $$id::n |}"
            "{ return(`{{$t $n = 0; use($n);}}); }"
        )
        unit = mp.expand_to_ast(
            "void f(void) { declare_zero unsigned long counter; }"
        )
        inner = unit.items[0].body.stmts[0]
        assert inner.decls[0].specs.type_spec.names == ["unsigned", "long"]

    def test_decl_parameter(self, mp):
        mp.load(
            "syntax stmt twice_decl {| $$decl::d |}"
            "{ return(`{{$d use(0);}}); }"
        )
        unit = mp.expand_to_ast("void f(void) { twice_decl int x = 1; }")
        inner = unit.items[0].body.stmts[0]
        assert len(inner.decls) == 1


class TestRepetition:
    def test_separated_list(self, mp):
        mp.load(
            "syntax stmt all {| { $$+/, exp::es } |}"
            "{ return(`{f($es);}); }"
        )
        unit = mp.expand_to_ast("void g(void) { all {1, 2, 3}; }")
        call = unit.items[0].body.stmts[0].expr
        assert len(call.args) == 3

    def test_unseparated_list_terminated_by_token(self, mp):
        mp.load(
            "syntax stmt block {| { $$*stmt::body } |}"
            "{ return(`{{$body}}); }"
        )
        unit = mp.expand_to_ast("void g(void) { block {a(); b(); c();} }")
        inner = unit.items[0].body.stmts[0]
        assert len(inner.stmts) == 3

    def test_empty_star_list(self, mp):
        mp.load(
            "syntax stmt block {| { $$*stmt::body } |}"
            "{ return(`{{$body}}); }"
        )
        unit = mp.expand_to_ast("void g(void) { block {} }")
        inner = unit.items[0].body.stmts[0]
        assert inner.stmts == []

    def test_plus_list_requires_one(self, mp):
        mp.load(
            "syntax stmt block {| { $$+stmt::body } |}"
            "{ return(`{{$body}}); }"
        )
        with pytest.raises(ParseError):
            mp.expand_to_ast("void g(void) { block {} }")


class TestOptional:
    SOURCE = (
        "syntax stmt count {| $$id::v = $$exp::hi"
        " $$? by exp::stride { $$*stmt::body } |}"
        "{ if (present(stride))"
        "    return(`{for ($v = 0; $v < $hi; $v = $v + $stride) {$body}});"
        "  return(`{for ($v = 0; $v < $hi; $v++) {$body}}); }"
    )

    def test_present(self, mp):
        mp.load(self.SOURCE)
        unit = mp.expand_to_ast("void f(void) { count i = 10 by 2 {w();} }")
        loop = unit.items[0].body.stmts[0]
        assert isinstance(loop.step, nodes.AssignOp)

    def test_absent(self, mp):
        mp.load(self.SOURCE)
        unit = mp.expand_to_ast("void f(void) { count i = 10 {w();} }")
        loop = unit.items[0].body.stmts[0]
        assert isinstance(loop.step, nodes.PostfixOp)


class TestTuples:
    def test_tuple_fields_via_member_access(self, mp):
        mp.load(
            "syntax stmt setpair {| $$( $$id::k = $$exp::v )::p ; |}"
            "{ return(`{assign($(p.k), $(p.v));}); }"
        )
        unit = mp.expand_to_ast("void f(void) { setpair x = 42; ; }")
        call = unit.items[0].body.stmts[0].expr
        assert call.args[0] == nodes.Identifier("x")
        assert call.args[1] == nodes.IntLit(42, "42")

    def test_repeated_tuples(self, mp):
        mp.load(
            "syntax stmt inits {| { $$+/, ( $$id::k = $$exp::v )::ps } |}"
            "{ return(`{{$(map((struct {@id k; @exp v;} p;"
            "   `{$(p.k) = $(p.v);}), ps))}}); }"
        )
        unit = mp.expand_to_ast("void f(void) { inits {a = 1, b = 2}; }")
        inner = unit.items[0].body.stmts[0]
        assert len(inner.stmts) == 2


class TestPositionChecks:
    def test_stmt_macro_rejected_at_expression_position(self, mp):
        mp.load(
            "syntax stmt noop {| ( ) |} { return(`{;}); }"
        )
        # noop is a stmt macro; in expression position it is just an
        # unknown identifier, so the call parses as a normal call.
        unit = mp.expand_to_ast("void f(void) { x = noop(); }")
        assert isinstance(unit.items[0].body.stmts[0].expr.value, nodes.Call)

    def test_exp_macro_at_expression_position(self, mp):
        mp.load(
            "syntax exp twice {| ( $$exp::e ) |} { return(`(2 * ($e))); }"
        )
        unit = mp.expand_to_ast("void f(void) { y = twice(x + 1); }")
        value = unit.items[0].body.stmts[0].expr.value
        assert isinstance(value, nodes.BinaryOp)
        assert value.op == "*"
