"""Tests for the general backquote form `` `{| pspec :: syntax |} ``."""

import pytest

from repro.asttypes.types import EXP, ID, TYPE_SPEC, ListType, TupleType, prim
from repro.cast import ctypes, nodes
from repro.errors import ParseError
from tests.macros.test_backquote import parse_backquote


class TestPrimForms:
    def test_expression(self):
        bq = parse_backquote("`{| exp :: a + b |}")
        assert bq.asttype == EXP
        assert isinstance(bq.template, nodes.BinaryOp)

    def test_identifier(self):
        bq = parse_backquote("`{| id :: hello |}")
        assert bq.asttype == ID
        assert bq.template == nodes.Identifier("hello")

    def test_type_spec(self):
        bq = parse_backquote("`{| type_spec :: unsigned long |}")
        assert bq.asttype == TYPE_SPEC
        assert bq.template == ctypes.PrimitiveType(["unsigned", "long"])

    def test_statement(self):
        bq = parse_backquote("`{| stmt :: return; |}")
        assert bq.asttype == prim("stmt")

    def test_declarator(self):
        bq = parse_backquote("`{| declarator :: *p |}")
        assert bq.asttype == prim("declarator")

    def test_num(self):
        bq = parse_backquote("`{| num :: 42 |}")
        assert bq.template == nodes.IntLit(42, "42")


class TestListForms:
    def test_separated_expression_list(self):
        bq = parse_backquote("`{| +/, exp :: 1, 2, 3 |}")
        assert bq.asttype == ListType(EXP)
        assert len(bq.template) == 3

    def test_separated_id_list(self):
        bq = parse_backquote("`{| +/, id :: red, green, blue |}")
        assert [i.name for i in bq.template] == ["red", "green", "blue"]

    def test_star_list_may_be_empty(self):
        bq = parse_backquote("`{| */, exp :: |}")
        assert bq.template == []


class TestTupleForm:
    def test_tuple(self):
        bq = parse_backquote("`{| ( $$id::k = $$exp::v ) :: key = 1 + 2 |}")
        assert isinstance(bq.asttype, TupleType)
        tup = bq.template
        assert tup.get("k") == nodes.Identifier("key")
        assert isinstance(tup.get("v"), nodes.BinaryOp)


class TestUsageInMacros:
    def test_type_spec_constant_in_meta_code(self, mp):
        mp.load(
            "syntax stmt declare {| $$id::n |}"
            "{ @type_spec t = `{| type_spec :: long |};"
            "  return(`{{$t $n = 0; use($n);}}); }"
        )
        out = mp.expand_to_c("void f(void) { declare counter; }")
        assert "long counter = 0;" in out

    def test_id_list_constant(self, mp):
        mp.load(
            "syntax decl colors[] {| $$id::tag ; |}"
            "{ @id ids[] = `{| +/, id :: red, green, blue |};"
            "  return(list(`[enum $tag {$ids};])); }"
        )
        out = mp.expand_to_c("colors palette;")
        assert "enum palette {red, green, blue};" in out

    def test_placeholders_inside_general_form(self, mp):
        mp.load(
            "syntax exp pairsum {| ( $$exp::a , $$exp::b ) |}"
            "{ @exp es[] = `{| +/, exp :: $a, $b, ($a) + ($b) |};"
            "  return(`(f($es))); }"
        )
        out = mp.expand_to_c("int r = pairsum(1, 2);")
        # The printer emits minimal parentheses; 1 + 2 is the third
        # element, built from the two placeholder substitutions.
        assert "f(1, 2, 1 + 2)" in out

    def test_errors_reported_against_template(self, mp):
        with pytest.raises(ParseError):
            parse_backquote("`{| exp :: 1 + |}")
