"""Compiled pattern routines must behave identically to the
interpreted engine (the paper's suggested acceleration)."""

import pytest

from repro import MacroProcessor, Ms2Options
from repro.errors import ParseError
from repro.macros.compiled import compile_pattern


MACROS = """
syntax stmt pair {| ( $$exp::a , $$exp::b ) |}
{ return(`{use($a, $b);}); }

syntax stmt block {| { $$*stmt::body } |}
{ return(`{{$body}}); }

syntax decl myenum[] {| $$id::name { $$+/, id::ids } ; |}
{ return(list(`[enum $name {$ids};])); }

syntax stmt count {| $$id::v = $$exp::hi $$? by exp::stride { $$*stmt::body } |}
{ if (present(stride))
    return(`{for ($v = 0; $v < $hi; $v = $v + $stride) {$body}});
  return(`{for ($v = 0; $v < $hi; $v++) {$body}}); }
"""

PROGRAMS = [
    "void f(void) { pair (x + 1, y); }",
    "void f(void) { block {a(); b(); c();} }",
    "myenum fruit {apple, banana, kiwi};",
    "void f(void) { count i = 10 by 2 {w();} }",
    "void f(void) { count i = 10 {w();} }",
]


def expand_with(compiled: bool, program: str) -> str:
    mp = MacroProcessor(options=Ms2Options(compiled_patterns=compiled))
    mp.load(MACROS)
    return mp.expand_to_c(program)


class TestEquivalence:
    @pytest.mark.parametrize("program", PROGRAMS)
    def test_same_output(self, program):
        assert expand_with(False, program) == expand_with(True, program)

    def test_compiled_matcher_attached(self):
        mp = MacroProcessor(options=Ms2Options(compiled_patterns=True))
        mp.load(MACROS)
        assert mp.table.lookup("pair").compiled_matcher is not None

    def test_interpreted_has_no_matcher(self):
        mp = MacroProcessor(options=Ms2Options(compiled_patterns=False))
        mp.load(MACROS)
        assert mp.table.lookup("pair").compiled_matcher is None


class TestCompiledErrors:
    def test_bad_literal_same_error(self):
        bad = "void f(void) { pair (1; 2); }"
        for compiled in (False, True):
            mp = MacroProcessor(options=Ms2Options(compiled_patterns=compiled))
            mp.load(MACROS)
            with pytest.raises(ParseError):
                mp.expand_to_c(bad)

    def test_missing_plus_element(self):
        mp = MacroProcessor(options=Ms2Options(compiled_patterns=True))
        mp.load(
            "syntax stmt need {| { $$+/, id::xs } |}"
            "{ return(`{f($xs);}); }"
        )
        with pytest.raises(ParseError):
            mp.expand_to_c("void f(void) { need {}; }")


class TestCompileFunction:
    def test_compiles_every_pspec_form(self):
        from repro.macros.pattern import parse_pattern_text

        for text in (
            "$$stmt::s",
            "$$+/, id::xs",
            "{ $$*stmt::b }",
            "$$?num::n ;",
            "$$? by exp::e ;",
            "$$( $$id::k = $$exp::v )::t",
        ):
            matcher = compile_pattern(parse_pattern_text(text), "m")
            assert matcher.steps
