"""Expansion cache: structural keys, replay semantics, purity gating.

The cache may only fire for macros whose meta-bodies are pure
functions of their actuals; everything here checks the two halves of
that contract — replays are indistinguishable from re-expansions, and
impure macros (``metadcl`` state, ``gensym``, semantic builtins,
transitively impure meta-functions) are never replayed.
"""

import re

import pytest

from repro import MacroProcessor, Ms2Options
from repro.cast import nodes
from repro.cast.struct_hash import Unhashable, structural_key
from repro.errors import SourceLocation
from repro.packages import dispatch, loops


def loc(line=1, col=1):
    return SourceLocation(line, col, 0, "<test>")


class TestStructuralKey:
    def test_equal_trees_equal_keys(self):
        a = nodes.BinaryOp("+", nodes.Identifier("x"), nodes.IntLit(1))
        b = nodes.BinaryOp("+", nodes.Identifier("x"), nodes.IntLit(1))
        assert structural_key(a) == structural_key(b)

    def test_different_trees_differ(self):
        a = nodes.BinaryOp("+", nodes.Identifier("x"), nodes.IntLit(1))
        b = nodes.BinaryOp("-", nodes.Identifier("x"), nodes.IntLit(1))
        assert structural_key(a) != structural_key(b)

    def test_locations_and_marks_ignored(self):
        a = nodes.Identifier("x", loc=loc(1, 1))
        b = nodes.Identifier("x", loc=loc(9, 9))
        b.mark = 42
        assert structural_key(a) == structural_key(b)

    def test_lists_keyed_structurally(self):
        a = [nodes.IntLit(1), nodes.IntLit(2)]
        b = [nodes.IntLit(1), nodes.IntLit(2)]
        assert structural_key(a) == structural_key(b)
        assert structural_key(a) != structural_key(list(reversed(b)))

    def test_unhashable_payload_raises(self):
        with pytest.raises(Unhashable):
            structural_key(object())


class TestReplaySemantics:
    SOURCE = (
        "syntax stmt wrap {| ( $$exp::e ) |}"
        "{ return(`{{int t = $e; use(t);}}); }"
    )

    def test_hit_is_a_fresh_tree(self):
        mp = MacroProcessor()
        mp.load(self.SOURCE)
        first = mp.expand_to_ast("void f(void) { wrap(1); }")
        second = mp.expand_to_ast("void g(void) { wrap(1); }")
        assert mp.stats.cache_hits == 1
        # Replay must not alias the stored tree or the first result.
        s1 = first.items[0].body.stmts[0]
        s2 = second.items[0].body.stmts[0]
        assert s1 == s2 and s1 is not s2
        assert s1.stmts[0] is not s2.stmts[0]

    def test_replay_relocates_to_invocation_site(self):
        mp = MacroProcessor()
        mp.load(self.SOURCE)
        mp.expand_to_ast("void f(void) {\n wrap(1);\n}")
        unit = mp.expand_to_ast("void g(void) {\n\n\n wrap(1);\n}")
        assert mp.stats.cache_hits == 1
        replayed = unit.items[0].body.stmts[0]
        assert replayed.loc.line == 4

    def test_replay_provenance_names_second_site(self):
        """A cached expansion replayed at a *second* call site must
        carry provenance pointing at that second site, not at the
        site that originally populated the cache."""
        from repro.provenance import provenance_of

        mp = MacroProcessor()
        mp.load(self.SOURCE)
        mp.expand_to_ast("void f(void) {\n wrap(1);\n}", "first.c")
        unit = mp.expand_to_ast(
            "void g(void) {\n\n\n wrap(1);\n}", "second.c"
        )
        assert mp.stats.cache_hits == 1
        replayed = unit.items[0].body.stmts[0]
        frames = provenance_of(replayed.loc)
        assert len(frames) == 1
        assert frames[0].macro == "wrap"
        assert frames[0].location.filename == "second.c"
        assert frames[0].location.line == 4

    def test_replay_error_backtrace_names_second_site(self):
        """Errors inside replayed code report the replaying site."""
        mp = MacroProcessor()
        mp.load(
            "syntax exp twice {| ( $$exp::e ) |}"
            "{ return(`(($e) * 2)); }\n"
            "syntax exp boom {| ( ) |}"
            '{ error("late"); return(`(0)); }\n'
            "syntax exp outer {| ( $$exp::e ) |}"
            "{ return(`(twice($e) + boom())); }",
            "pkg.c",
        )
        # boom() fails inside outer's template: both call sites miss
        # the cache, but each failure must name its own user line.
        from repro.errors import Ms2Error

        with pytest.raises(Ms2Error) as info:
            mp.expand_to_c("int a = outer(1);", "user.c")
        assert "expanded from outer at user.c:1" in str(info.value)

    def test_distinct_replays_get_distinct_marks(self):
        mp = MacroProcessor()
        mp.load(self.SOURCE)
        unit = mp.expand_to_ast(
            "void f(void) { wrap(1); wrap(1); wrap(1); }"
        )
        assert mp.stats.cache_hits == 2
        marks = {s.mark for s in unit.items[0].body.stmts}
        assert len(marks) == 3

    def test_different_arguments_miss(self):
        mp = MacroProcessor()
        mp.load(self.SOURCE)
        mp.expand_to_c("void f(void) { wrap(1); wrap(2); }")
        assert mp.stats.cache_hits == 0
        assert mp.stats.cache_misses == 2

    def test_redefinition_changes_generation(self):
        mp = MacroProcessor()
        mp.load(
            "syntax stmt a {| ( ) |} { return(`{x();}); }\n"
            "syntax stmt b {| ( ) |} { return(`{y();}); }"
        )
        a = mp.table.lookup("a")
        b = mp.table.lookup("b")
        assert a.generation != b.generation


class TestPurityGating:
    def test_gensym_macro_never_cached(self):
        mp = MacroProcessor()
        mp.load(
            "syntax stmt g {| ( ) |}"
            "{ @id t = gensym(); return(`{{int $t = 0; use($t);}}); }"
        )
        out = mp.expand_to_c("void f(void) { g(); g(); }")
        assert mp.stats.cache_hits == 0
        assert mp.stats.cache_uncacheable == 2
        names = set(re.findall(r"__g_\d+", out))
        assert len(names) == 2  # each expansion got its own name

    def test_metadcl_state_never_cached(self):
        mp = MacroProcessor()
        mp.load(
            "metadcl int n;\n"
            "syntax exp tick {| ( ) |}"
            "{ n = n + 1; return(make_num(n)); }"
        )
        out = mp.expand_to_c("int a = tick(); int b = tick(); "
                             "int c = tick();")
        assert mp.stats.cache_hits == 0
        assert mp.stats.cache_uncacheable == 3
        assert "1" in out and "2" in out and "3" in out

    def test_transitive_metadcl_through_meta_function(self):
        """A macro is impure if a meta-function it calls touches
        ``metadcl`` state — even though the macro body itself never
        names the meta-global."""
        mp = MacroProcessor()
        mp.load(
            "metadcl int n;\n"
            "@exp bump() { n = n + 1; return(make_num(n)); }\n"
            "syntax exp stamp {| ( ) |} { return(bump()); }"
        )
        out = mp.expand_to_c("int a = stamp(); int b = stamp();")
        assert mp.stats.cache_hits == 0
        assert mp.stats.cache_uncacheable == 2
        assert "1" in out and "2" in out

    def test_pure_meta_function_call_is_cacheable(self):
        mp = MacroProcessor()
        mp.load(
            "@exp dbl(@exp e) { return(`($e + $e)); }\n"
            "syntax exp twice {| ( $$exp::e ) |} { return(dbl(e)); }"
        )
        mp.expand_to_c("int a = twice(q); int b = twice(q);")
        assert mp.stats.cache_hits == 1

    def test_semantic_builtins_never_cached(self):
        mp = MacroProcessor()
        mp.load(
            "syntax stmt show {| ( $$id::var ) |}\n"
            "{ @type_spec t = type_of(var);\n"
            "  return(`{print($var);}); }"
        )
        mp.expand_to_c("void f(int a) { show(a); show(a); }")
        assert mp.stats.cache_hits == 0
        assert mp.stats.cache_uncacheable == 2

    def test_window_dispatch_accumulation_with_cache_enabled(self):
        """The paper's non-local transformation (window-procedure
        dispatch tables) mutates meta-globals across invocations; the
        purity analysis must keep the cache out of its way."""
        mp = MacroProcessor()  # cache on by default
        dispatch.register(mp)
        out = mp.expand_to_c(
            "new_window_proc wproc default DefWindowProc;\n"
            "window_proc_dispatch(wproc, WM_CREATE) {setup(hWnd);}\n"
            "window_proc_dispatch(wproc, WM_PAINT) {paint(hWnd);}\n"
            "emit_window_proc wproc;\n"
        )
        assert mp.stats.cache_hits == 0
        assert "case WM_CREATE" in out
        assert "case WM_PAINT" in out
        assert "DefWindowProc" in out

    def test_hygienic_mode_disables_cache(self):
        mp = MacroProcessor(options=Ms2Options(hygienic=True))
        assert mp.cache is None
        loops.register(mp)
        mp.expand_to_c("void f() { unroll (2) {a();} unroll (2) {a();} }")
        assert mp.stats.cache_hits == 0


class TestStatsWiring:
    def test_counters_populate(self):
        mp = MacroProcessor()
        loops.register(mp)
        mp.expand_to_c(
            "void f() { unroll (2) {a();} unroll (2) {a();} }"
        )
        s = mp.stats
        assert s.cache_hits == 1 and s.cache_misses == 1
        assert s.cache_hit_rate() == 0.5
        assert s.compiled_parses == 2
        assert s.dispatch_hits == 2
        assert s.expansions == 2
        assert s.tokens_scanned > 0
        assert s.tokens_interned > 0

    def test_as_dict_and_summary_agree(self):
        mp = MacroProcessor()
        loops.register(mp)
        mp.expand_to_c("void f() { unroll (2) {a();} }")
        d = mp.stats.as_dict()
        text = mp.stats.summary()
        for key in d:
            assert key in text


class TestReplayHardening:
    """Corrupt or stale snapshots fall back to re-expansion: memo
    corruption must never surface as a raw unpickling exception."""

    SRC = "syntax stmt pure {| ( ) |} { return(`{work();}); }"
    PROG = "void f(void) { pure(); }"

    def _primed(self):
        mp = MacroProcessor()
        mp.load(self.SRC)
        mp.expand_to_c(self.PROG)
        assert len(mp.cache) == 1
        return mp

    def test_corrupt_blob_falls_back_to_reexpansion(self):
        mp = self._primed()
        key = next(iter(mp.cache._entries))
        blob = mp.cache._entries[key]
        # Keep the version header, garble the pickle payload.
        mp.cache._entries[key] = blob[:5] + b"\x80garbage\xff" + blob[9:]
        out = mp.expand_to_c(self.PROG)
        assert "work()" in out
        assert mp.stats.cache_replay_failures == 1
        # The poisoned entry was evicted and re-stored on the fallback
        # expansion; the next run replays cleanly.
        mp.expand_to_c(self.PROG)
        assert mp.stats.cache_replay_failures == 1

    def test_truncated_blob_falls_back(self):
        mp = self._primed()
        key = next(iter(mp.cache._entries))
        mp.cache._entries[key] = mp.cache._entries[key][:8]
        out = mp.expand_to_c(self.PROG)
        assert "work()" in out
        assert mp.stats.cache_replay_failures == 1

    def test_stale_version_header_is_rejected(self):
        from repro.macros import cache as cache_mod

        mp = self._primed()
        key = next(iter(mp.cache._entries))
        blob = mp.cache._entries[key]
        stale = cache_mod._MAGIC + bytes([99]) + blob[5:]
        mp.cache._entries[key] = stale
        out = mp.expand_to_c(self.PROG)
        assert "work()" in out
        assert mp.stats.cache_replay_failures == 1

    def test_store_prefixes_version_header(self):
        from repro.macros import cache as cache_mod

        mp = self._primed()
        blob = next(iter(mp.cache._entries.values()))
        assert blob.startswith(
            cache_mod._MAGIC + bytes([cache_mod.CACHE_FORMAT_VERSION])
        )
