"""Tests for MacroDefinition and the macro keyword table."""

import pytest

from repro.asttypes.types import ListType, prim
from repro.cast import stmts
from repro.errors import MacroSyntaxError
from repro.macros.definition import MacroDefinition, MacroTable
from repro.macros.pattern import parse_pattern_text


def make_defn(name="m", ret="stmt", returns_list=False) -> MacroDefinition:
    return MacroDefinition(
        name, ret, returns_list,
        parse_pattern_text("( $$exp::e )"),
        stmts.CompoundStmt([], []),
    )


class TestMacroDefinition:
    def test_return_type_scalar(self):
        assert make_defn(ret="stmt").return_type == prim("stmt")

    def test_return_type_list(self):
        defn = make_defn(ret="decl", returns_list=True)
        assert defn.return_type == ListType(prim("decl"))

    def test_repr_shows_signature(self):
        text = repr(make_defn("painter", "stmt"))
        assert "painter" in text
        assert "stmt" in text

    def test_repr_shows_list_suffix(self):
        assert "[]" in repr(make_defn(returns_list=True))

    def test_from_node(self):
        from repro import MacroProcessor

        mp = MacroProcessor()
        mp.load("syntax stmt t {| ( ) |} { return(`{w();}); }")
        defn = mp.table.lookup("t")
        assert defn.name == "t"
        assert defn.ret_spec == "stmt"
        assert not defn.returns_list
        # Compiled dispatch is the default; the interpreted engine is
        # opt-in via MacroProcessor(compiled_patterns=False).
        assert defn.compiled_matcher is not None


class TestMacroTable:
    def test_define_and_lookup(self):
        table = MacroTable()
        defn = make_defn("alpha")
        table.define(defn)
        assert table.lookup("alpha") is defn
        assert table.lookup("beta") is None

    def test_contains_and_len(self):
        table = MacroTable()
        table.define(make_defn("a"))
        table.define(make_defn("b"))
        assert "a" in table
        assert "c" not in table
        assert len(table) == 2

    def test_names_sorted(self):
        table = MacroTable()
        for name in ("zebra", "alpha", "mid"):
            table.define(make_defn(name))
        assert table.names() == ["alpha", "mid", "zebra"]

    def test_redefinition_rejected(self):
        table = MacroTable()
        table.define(make_defn("dup"))
        with pytest.raises(MacroSyntaxError):
            table.define(make_defn("dup"))


class TestInvocationRendering:
    def test_unexpanded_invocation_prints_concretely(self):
        from repro import MacroProcessor
        from repro.cast.printer import render_c
        from repro.parser.core import Parser

        mp = MacroProcessor()
        mp.load(
            "syntax stmt bracket {| [ $$exp::e ] |}"
            "{ return(`{f($e);}); }"
        )
        parser = Parser("bracket [x + 1];", host=mp, expand_inline=False)
        node = parser.parse_statement()
        text = render_c(node)
        assert "bracket" in text
        assert "x + 1" in text
