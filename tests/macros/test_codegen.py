"""Unit tests for the macro body/template compiler.

The compiler's contract is *exact* semantic parity with the
meta-interpreter — same values, same error types, same error messages
— plus observability (stats counters) and a per-macro fallback for
constructs it punts on.  Output-level parity over the whole corpus
lives in ``tests/integration/test_body_compile_parity.py``; these
tests pin down the contract construct by construct.
"""

from __future__ import annotations

import pytest

from repro import MacroProcessor, Ms2Options
from repro.errors import Ms2Error
from repro.macros import codegen
from repro.macros.codegen import CompiledBody, get_compiled_body


def run_both(macro_src: str, program: str):
    """Expand ``program`` with bodies interpreted and compiled;
    return the two outcomes as comparable tuples."""
    outcomes = []
    for compiled in (False, True):
        mp = MacroProcessor(
            options=Ms2Options(cache=False, compiled_bodies=compiled)
        )
        mp.load(macro_src)
        try:
            outcomes.append(("ok", mp.expand_to_c(program)))
        except Ms2Error as exc:
            outcomes.append((type(exc).__name__, str(exc)))
    return outcomes


def assert_parity(macro_src: str, program: str):
    interpreted, compiled = run_both(macro_src, program)
    assert compiled == interpreted
    return compiled


class TestValueParity:
    def test_for_loop_with_break_and_continue(self):
        outcome = assert_parity(
            "syntax exp sumto {| ( ) |} {\n"
            "  int i; int s; s = 0;\n"
            "  for (i = 0; i < 10; i++) {\n"
            "    if (i == 3) continue;\n"
            "    if (i > 6) break;\n"
            "    s = s + i;\n"
            "  }\n"
            "  return(`($(s)));\n"
            "}",
            "int r = sumto();",
        )
        assert outcome[0] == "ok" and "18" in outcome[1]

    def test_do_while_with_continue_checks_condition(self):
        outcome = assert_parity(
            "syntax exp dw {| ( ) |} {\n"
            "  int i; int s; i = 0; s = 0;\n"
            "  do { i++; if (i == 2) continue; s = s + i; }\n"
            "  while (i < 4);\n"
            "  return(`($(s)));\n"
            "}",
            "int r = dw();",
        )
        assert outcome[0] == "ok" and "8" in outcome[1]

    def test_while_with_compound_assignment(self):
        outcome = assert_parity(
            "syntax exp wl {| ( ) |} {\n"
            "  int i; i = 1;\n"
            "  while (i < 100) { i *= 3; }\n"
            "  return(`($(i)));\n"
            "}",
            "int r = wl();",
        )
        assert outcome[0] == "ok" and "243" in outcome[1]

    def test_string_builtins_and_ternary(self):
        # Strings arise from literals/builtins (no declarable string
        # type, and the checker rejects indexing them).
        outcome = assert_parity(
            "syntax exp pick {| ( $$id::n ) |} {\n"
            "  return(`($(strlen(pstring(n)) > 1 ? 98 : 97)));\n"
            "}",
            "int r = pick(ab);",
        )
        assert outcome[0] == "ok" and "98" in outcome[1]

    def test_anonymous_function_mutates_enclosing_local(self):
        # The closure assigns the macro body's local (a ``nonlocal``
        # in the generated Python) — once per mapped element.
        outcome = assert_parity(
            "syntax exp count {| ( $$+/, exp::xs ) |} {\n"
            "  int n; n = 0;\n"
            "  return(`(f($(map((@exp e; `($(n = n + 1))), xs)))));\n"
            "}",
            "int r = count(a, b, c);",
        )
        assert outcome[0] == "ok"
        assert "f(1, 2, 3)" in outcome[1]

    def test_meta_function_called_from_compiled_body(self):
        assert_parity(
            "@exp dbl(@exp e) { return(`(($e) * 2)); }\n"
            "syntax exp twice {| ( $$exp::x ) |}"
            "{ return(dbl(x)); }",
            "int r = twice(5);",
        )


class TestErrorMessageParity:
    """Same error class, same message, same location — byte for byte."""

    CASES = {
        # The definition-time type checker demands the returned value
        # have the macro's declared AST type, so runtime errors are
        # provoked inside template placeholders (typed ``exp``).
        "division-by-zero": (
            "syntax exp bad {| ( ) |} "
            "{ int x; x = 0; return(`($(1 / x))); }",
            "int r = bad();",
        ),
        "modulo-by-zero": (
            "syntax exp bad {| ( ) |} "
            "{ int x; x = 0; return(`($(1 % x))); }",
            "int r = bad();",
        ),
        "head-of-empty-list": (
            "syntax exp bad {| ( ) |} { @exp ys[]; return(*ys); }",
            "int r = bad();",
        ),
        "list-index-out-of-range": (
            "syntax exp bad {| ( $$+/, exp::xs ) |} { return(xs[9]); }",
            "int r = bad(a, b);",
        ),
        # A return statement exists (the checker requires one) but is
        # skipped at runtime: the body falls off the end.
        "missing-return": (
            "syntax exp bad {| ( ) |} "
            "{ int x; x = 0; if (x) return(`(1)); }",
            "int r = bad();",
        ),
        "meta-recursion-limit": (
            "@exp f(int n) { return(f(n)); }\n"
            "syntax exp bad {| ( ) |} { return(f(0)); }",
            "int r = bad();",
        ),
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_identical_errors(self, case):
        macro_src, program = self.CASES[case]
        interpreted, compiled = run_both(macro_src, program)
        assert compiled == interpreted
        assert compiled[0] != "ok"

    def test_execution_budget_message(self):
        # Compiled bodies batch-charge the shared fuel counter; a
        # runaway loop must still exhaust it with the interpreter's
        # exact message.  (Interpreted comparison skipped: walking
        # 5M ticks through the tree-walker takes tens of seconds.)
        mp = MacroProcessor(options=Ms2Options(cache=False))
        mp.load(
            "syntax exp spin {| ( ) |} "
            "{ int x; x = 0; while (1) { x = x + 1; } "
            "return(`($(x))); }"
        )
        with pytest.raises(Ms2Error) as err:
            mp.expand_to_c("int r = spin();")
        assert "exceeded its execution budget" in str(err.value)
        assert "5000000 steps" in str(err.value)


class TestFallbacks:
    SWITCH_MACRO = (
        "syntax exp pick {| ( $$exp::n ) |} {\n"
        "  int k; int r; k = 2; r = 0;\n"
        "  switch (k) { case 1: r = 10; break;\n"
        "               case 2: r = 20; break;\n"
        "               default: r = 30; }\n"
        "  return(`(($n) + $(r)));\n"
        "}"
    )

    def test_switch_falls_back_to_interpreter(self):
        mp = MacroProcessor(options=Ms2Options(cache=False))
        mp.load(self.SWITCH_MACRO)
        out = mp.expand_to_c("int r = pick(1);")
        assert "20" in out
        assert mp.stats.compile_fallbacks == 1
        assert mp.stats.bodies_compiled == 0

    def test_fallback_output_matches_interpreter(self):
        assert_parity(self.SWITCH_MACRO, "int r = pick(1);")

    def test_fallback_is_cached_per_definition(self):
        mp = MacroProcessor(options=Ms2Options(cache=False))
        mp.load(self.SWITCH_MACRO)
        mp.expand_to_c("int a = pick(1); int b = pick(2); int c = pick(3);")
        assert mp.stats.compile_fallbacks == 1
        assert mp.table.lookup("pick").compiled_body is False


class TestStatsAndCaching:
    MACRO = (
        "syntax exp three {| ( ) |} "
        "{ return(`(1 + $(2))); }"
    )

    def test_compiled_once_per_definition(self):
        mp = MacroProcessor(options=Ms2Options(cache=False))
        mp.load(self.MACRO)
        mp.expand_to_c("int a = three(); int b = three(); int c = three();")
        assert mp.stats.bodies_compiled == 1
        assert mp.stats.templates_compiled == 1
        assert mp.stats.compile_fallbacks == 0
        assert mp.stats.compile_time_ms > 0
        assert isinstance(
            mp.table.lookup("three").compiled_body, CompiledBody
        )

    def test_counters_survive_json_round_trip(self):
        from repro.stats import PipelineStats

        stats = PipelineStats(
            bodies_compiled=3,
            templates_compiled=7,
            compile_fallbacks=1,
            compile_time_ms=1.5,
        )
        payload = stats.to_json()
        for key in (
            "bodies_compiled",
            "templates_compiled",
            "compile_fallbacks",
            "compile_time_ms",
        ):
            assert key in payload
        loaded = PipelineStats.from_json(payload)
        assert loaded.bodies_compiled == 3
        assert loaded.compile_time_ms == 1.5
        merged = PipelineStats()
        merged.merge(stats)
        merged.merge(stats)
        assert merged.templates_compiled == 14
        assert merged.compile_time_ms == 3.0

    def test_kill_switch_disables_compilation(self, mp, monkeypatch):
        monkeypatch.setattr(codegen, "_DISABLED", True)
        mp.load(self.MACRO)
        assert get_compiled_body(mp.table.lookup("three")) is None
        assert mp.table.lookup("three").compiled_body is None

    def test_options_flag_disables_compilation(self):
        mp = MacroProcessor(
            options=Ms2Options(cache=False, compiled_bodies=False)
        )
        mp.load(self.MACRO)
        mp.expand_to_c("int a = three();")
        assert mp.stats.bodies_compiled == 0
        assert mp.table.lookup("three").compiled_body is None


class TestSemanticsNeutralOptions:
    def test_compiled_bodies_excluded_from_options_hash(self):
        on = Ms2Options(compiled_bodies=True)
        off = Ms2Options(compiled_bodies=False)
        assert on.options_hash() == off.options_hash()

    def test_compiled_closure_masquerades_as_closure(self):
        # Dynamic-type error messages print type(v).__name__; a
        # compiled closure must not leak its implementation class.
        assert codegen.CompiledClosure.__name__ == "Closure"
