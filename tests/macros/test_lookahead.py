"""Tests for one-token-lookahead validation of patterns."""

import pytest

from repro.errors import PatternLookaheadError
from repro.macros.lookahead import (
    FirstSet,
    first_of_pspec,
    validate_pattern,
)
from repro.macros.pattern import SpecPrim, parse_pattern_text


def check(text: str) -> None:
    validate_pattern(parse_pattern_text(text), "m")


class TestFirstSets:
    def test_exp_first_contains_idents_and_parens(self):
        first = first_of_pspec(SpecPrim("exp"))
        assert first.contains_text("(")
        assert first.contains_text("someident")

    def test_stmt_first_contains_keywords(self):
        first = first_of_pspec(SpecPrim("stmt"))
        assert first.contains_text("if")
        assert first.contains_text("{")
        assert not first.contains_text("}")

    def test_num_first_excludes_idents(self):
        first = first_of_pspec(SpecPrim("num"))
        assert not first.contains_text("x")

    def test_intersects_by_category(self):
        a = FirstSet(set(), {"ident"})
        b = FirstSet({"foo"}, set())
        assert a.intersects(b)
        assert b.intersects(a)

    def test_disjoint(self):
        a = FirstSet({"{"}, set())
        b = FirstSet({"}"}, set())
        assert not a.intersects(b)


class TestValidPatterns:
    def test_simple(self):
        check("$$stmt::body")

    def test_separated_repetition(self):
        check("$$id::name { $$+/, id::ids } ;")

    def test_unseparated_repetition_before_brace(self):
        check("{ $$*stmt::body }")

    def test_guarded_optional_before_brace(self):
        check("$$exp::hi $$? step exp::stride { $$*stmt::body }")

    def test_unguarded_num_optional_before_semicolon(self):
        check("$$?num::n ;")

    def test_tuple(self):
        check("( $$id::k = $$exp::v )")


class TestInvalidPatterns:
    def test_unseparated_repetition_at_end(self):
        # The end of the repetition cannot be determined.
        with pytest.raises(PatternLookaheadError):
            check("$$+stmt::body")

    def test_repetition_element_starts_like_follow(self):
        # stmts can start with an identifier; so can the next param.
        with pytest.raises(PatternLookaheadError):
            check("$$*stmt::body $$exp::e ;")

    def test_optional_at_end(self):
        with pytest.raises(PatternLookaheadError):
            check("$$id::name $$?exp::e")

    def test_optional_ambiguous_with_follow(self):
        # An optional exp followed by an exp: both start with idents.
        with pytest.raises(PatternLookaheadError):
            check("$$?exp::a $$exp::b ;")

    def test_guard_token_colliding_with_follow(self):
        # Guard 'step' also begins what follows (an id param).
        with pytest.raises(PatternLookaheadError):
            check("$$? step exp::stride $$id::x ;")

    def test_separator_also_in_follow(self):
        with pytest.raises(PatternLookaheadError):
            check("$$+/, id::ids , $$id::last ;")

    def test_nested_tuple_contents_validated(self):
        # The repetition inside the tuple sub-pattern is open-ended.
        with pytest.raises(PatternLookaheadError):
            check("$$( $$+stmt::body )::t ;")

    def test_literal_parens_make_repetition_valid(self):
        # Literal '(' ')' tokens are fine: ')' terminates the repetition.
        check("( $$+stmt::body )")


class TestExpressionContinuationRule:
    """Operator buzz tokens after exp parameters would be consumed into
    the actual; the validator rejects them (found by fuzzing)."""

    def test_index_bracket_after_exp_rejected(self):
        with pytest.raises(PatternLookaheadError) as exc:
            check("$$exp::e [ $$num::n ]")
        assert "'['" in str(exc.value)

    def test_binary_operator_after_exp_rejected(self):
        with pytest.raises(PatternLookaheadError):
            check("$$exp::a + $$exp::b ;")

    def test_open_paren_after_exp_rejected(self):
        with pytest.raises(PatternLookaheadError):
            check("$$exp::e ( )")

    def test_safe_delimiters_accepted(self):
        check("$$exp::e ;")
        check("( $$exp::e )")
        check("$$exp::a , $$exp::b ;")

    def test_identifier_buzz_after_exp_accepted(self):
        # 'to' cannot continue an expression.
        check("$$exp::lo to $$exp::hi ;")

    def test_operator_separator_for_exp_list_rejected(self):
        with pytest.raises(PatternLookaheadError):
            check("$$+/+ exp::es ;")

    def test_comma_separator_for_exp_list_accepted(self):
        check("$$+/, exp::es ;")

    def test_guard_operator_after_exp_rejected(self):
        # ('+', '*', '?', '(' cannot even be written as guards — they
        # read as pspec markers — so '[' is the interesting case.)
        with pytest.raises(PatternLookaheadError):
            check("$$exp::e $$? [ exp::scale ;")

    def test_rule_applies_inside_tuples(self):
        with pytest.raises(PatternLookaheadError):
            check("$$( $$exp::x [ $$num::i ] )::t ;")


class TestErrorMessages:
    def test_mentions_macro_and_parameter(self):
        with pytest.raises(PatternLookaheadError) as exc:
            validate_pattern(parse_pattern_text("$$+stmt::body"), "mymacro")
        message = str(exc.value)
        assert "mymacro" in message
        assert "body" in message

    def test_mentions_one_token_lookahead(self):
        with pytest.raises(PatternLookaheadError) as exc:
            check("$$*stmt::body $$exp::e ;")
        assert "lookahead" in str(exc.value)
