"""Tests for the verbose create_* constructor API (paper section 1)."""

import pytest

from repro.cast import nodes, render_c, stmts
from repro.cast.builders import (
    create_address_of,
    create_argument_list,
    create_assignment,
    create_binary,
    create_break,
    create_case,
    create_compound_statement,
    create_declaration_list,
    create_default,
    create_enum,
    create_function_call,
    create_id,
    create_if,
    create_member,
    create_num,
    create_return,
    create_simple_declaration,
    create_statement_list,
    create_string,
    create_switch,
    create_while,
    createId,
)
from tests.conftest import assert_c_equal


class TestPaperExample:
    def test_paint_function_constructor_style(self):
        """The verbose construction from the paper's introduction."""
        body_stmt = stmts.ExprStmt(
            create_function_call(create_id("user_code"), [])
        )
        tree = create_compound_statement(
            create_declaration_list(),
            create_statement_list(
                create_function_call(
                    createId("BeginPaint"),
                    create_argument_list(
                        createId("hDC"),
                        create_address_of(createId("ps")),
                    ),
                ),
                body_stmt,
                create_function_call(
                    createId("EndPaint"),
                    create_argument_list(
                        createId("hDC"),
                        create_address_of(createId("ps")),
                    ),
                ),
            ),
        )
        assert_c_equal(
            render_c(tree),
            "{BeginPaint(hDC, &ps); user_code(); EndPaint(hDC, &ps);}",
        )


class TestExpressions:
    def test_binary_validates_operator(self):
        with pytest.raises(ValueError):
            create_binary("**", create_id("a"), create_id("b"))

    def test_assignment_validates_operator(self):
        with pytest.raises(ValueError):
            create_assignment(create_id("a"), create_num(1), op="==")

    def test_member(self):
        assert render_c(create_member(create_id("p"), "x")) == "p.x"
        assert render_c(create_member(create_id("p"), "x", arrow=True)) == (
            "p->x"
        )

    def test_string(self):
        assert render_c(create_string("hi")) == '"hi"'

    def test_string_escaping(self):
        assert render_c(create_string('a"b')) == '"a\\"b"'


class TestStatements:
    def test_statement_list_wraps_expressions(self):
        items = create_statement_list(create_id("x"))
        assert isinstance(items[0], stmts.ExprStmt)

    def test_statement_list_keeps_statements(self):
        ret = create_return(create_id("x"))
        items = create_statement_list(ret)
        assert items[0] is ret

    def test_if_else(self):
        tree = create_if(
            create_id("a"),
            stmts.ExprStmt(create_id("b")),
            stmts.ExprStmt(create_id("c")),
        )
        assert_c_equal(render_c(tree), "if (a) b; else c;")

    def test_while(self):
        tree = create_while(create_id("a"), create_break())
        assert_c_equal(render_c(tree), "while (a) break;")

    def test_switch_with_cases(self):
        tree = create_switch(
            create_id("x"),
            create_compound_statement(
                [],
                [
                    create_case(create_num(1), create_break()),
                    create_default(create_break()),
                ],
            ),
        )
        assert_c_equal(
            render_c(tree),
            "switch (x) {case 1: break; default: break;}",
        )


class TestDeclarations:
    def test_simple_declaration(self):
        decl = create_simple_declaration(["unsigned", "long"], "n")
        assert_c_equal(render_c(decl), "unsigned long n;")

    def test_enum(self):
        enum = create_enum("color", ["red", "green"])
        assert enum.tag == "color"
        assert len(enum.enumerators) == 2
