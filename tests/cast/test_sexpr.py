"""Tests for the S-expression renderer (the Figure 2/3 format)."""

from repro.cast import nodes, render_sexpr, stmts
from repro.cast.builders import create_binary, create_id, create_num
from tests.conftest import parse_c, parse_expr, parse_stmt


class TestExpressions:
    def test_identifier(self):
        assert render_sexpr(create_id("x")) == "(id x)"

    def test_number(self):
        assert render_sexpr(create_num(42)) == "(num 42)"

    def test_binary(self):
        tree = create_binary("+", create_id("a"), create_id("b"))
        assert render_sexpr(tree) == "(+ (id a) (id b))"

    def test_call(self):
        tree = nodes.Call(create_id("f"), [create_id("x")])
        assert render_sexpr(tree) == "(call (id f) (id x))"

    def test_call_no_args(self):
        tree = nodes.Call(create_id("f"), [])
        assert render_sexpr(tree) == "(call (id f))"


class TestStatements:
    def test_return(self):
        tree = parse_stmt("return x;")
        assert render_sexpr(tree) == (
            "(return-statement (expression (id x)))"
        )

    def test_return_abbreviated(self):
        tree = parse_stmt("return x;")
        assert render_sexpr(tree, abbrev=True) == "(r-s (exp (id x)))"

    def test_compound_shape(self):
        tree = parse_stmt("{int x; return x;}")
        out = render_sexpr(tree, abbrev=True)
        assert out.startswith("(c-s (decl-list")
        assert "(stmt-list" in out

    def test_declaration_abbreviated_quotes_source(self):
        tree = parse_stmt("{int x; return x;}")
        out = render_sexpr(tree, abbrev=True)
        assert '(decl "int x")' in out


class TestDeclarations:
    def test_declaration_full_form(self):
        unit = parse_c("int y;")
        out = render_sexpr(unit.items[0])
        assert out == (
            "(declaration (int) ((init-declarator (direct-declarator y) "
            "())))"
        )

    def test_declaration_with_init(self):
        unit = parse_c("int y = 1;")
        out = render_sexpr(unit.items[0])
        assert "(num 1)" in out

    def test_lists_render_in_parens(self):
        assert render_sexpr([create_id("a"), create_id("b")]) == (
            "((id a) (id b))"
        )

    def test_none_is_empty(self):
        assert render_sexpr(None) == "()"


class TestGenericFallback:
    def test_if_statement_renders(self):
        tree = parse_stmt("if (a) b();")
        out = render_sexpr(tree)
        assert out.startswith("(if-statement")

    def test_while_statement_renders(self):
        tree = parse_stmt("while (a) b();")
        assert render_sexpr(tree).startswith("(while-statement")

    def test_expression_precedence_preserved_in_sexpr(self):
        # The sexpr of x + y * m shows * nested under +.
        tree = parse_expr("x + y * m")
        assert render_sexpr(tree) == "(+ (id x) (* (id y) (id m)))"
