"""Parse → print → parse round trips on a corpus of realistic C."""

import pytest

from repro.cast import render_c
from repro.parser.core import Parser
from tests.conftest import parse_c

CORPUS = {
    "hello": '''
int main(void)
{
    printf("%s\\n", "hello, world");
    return 0;
}
''',
    "binary-search": '''
int bsearch_int(int *a, int n, int key)
{
    int lo;
    int hi;
    lo = 0;
    hi = n - 1;
    while (lo <= hi) {
        int mid;
        mid = lo + (hi - lo) / 2;
        if (a[mid] == key) return mid;
        if (a[mid] < key) lo = mid + 1; else hi = mid - 1;
    }
    return -1;
}
''',
    "linked-list": '''
struct node {int value; struct node *next;};
typedef struct node node_t;

node_t *reverse(node_t *head)
{
    node_t *prev;
    node_t *next;
    prev = 0;
    while (head) {
        next = head->next;
        head->next = prev;
        prev = head;
        head = next;
    }
    return prev;
}
''',
    "state-machine": '''
enum state {idle, running, stopped};

int step(int s, int event)
{
    switch (s) {
        case idle:
            if (event == 1) return running;
            break;
        case running:
            if (event == 2) return stopped;
            if (event == 3) return idle;
            break;
        default:
            break;
    }
    return s;
}
''',
    "function-pointers": '''
typedef int (*binop_t)(int, int);

int apply(binop_t op, int a, int b)
{
    return (*op)(a, b);
}

int table_dispatch(binop_t ops[4], int which, int x)
{
    return ops[which](x, x);
}
''',
    "kr-style": '''
int old_style(a, b, buf)
int a, b;
char *buf;
{
    int i;
    for (i = 0; i < a; i++) buf[i] = b + i;
    return i;
}
''',
    "expressions": '''
int gauntlet(int a, int b, int c)
{
    int r;
    r = a ? b : c;
    r += a << 2 | b & ~c ^ (a >> 1);
    r -= sizeof(int) + sizeof r;
    r *= (a == b) != (b >= c);
    r = !a && b || c;
    r = (int)(a + b), r++, --r;
    return r;
}
''',
    "nested-control": '''
void matrix_walk(int n)
{
    int i;
    int j;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            if (i == j) continue;
            do {
                visit(i, j);
            } while (pending(i, j));
        }
        if (abort_requested()) goto out;
    }
out:
    cleanup();
}
''',
    "storage-and-quals": '''
static const unsigned long mask = 0xFF;
extern volatile int interrupts;
register int fast;
union overlay {int as_int; float as_float; char bytes[4];};
''',
    "initializers": '''
int grid[2][2] = {{1, 2}, {3, 4}};
struct point {int x; int y;} origin = {0, 0};
char *names[3] = {"a", "b", "c"};
''',
}


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_round_trip_stable(name):
    source = CORPUS[name]
    first = parse_c(source)
    printed = render_c(first)
    second = Parser(printed).parse_program()
    assert second == first, printed


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_print_is_idempotent(name):
    source = CORPUS[name]
    once = render_c(parse_c(source))
    twice = render_c(Parser(once).parse_program())
    assert once == twice


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_macro_processor_passthrough(name):
    """Plain C through the full pipeline equals plain parse/print."""
    from repro import MacroProcessor

    source = CORPUS[name]
    direct = render_c(parse_c(source))
    piped = MacroProcessor().expand_to_c(source)
    assert direct == piped
