"""Tests for the unparser: precedence, declarators, statements."""

import pytest

from repro.cast import nodes, render_c, stmts
from repro.cast.builders import (
    create_binary,
    create_id,
    create_num,
    create_simple_declaration,
)
from tests.conftest import assert_c_equal, parse_c, parse_expr, parse_stmt


def print_expr(source: str) -> str:
    return render_c(parse_expr(source))


class TestExpressionPrecedence:
    def test_flat_addition(self):
        assert print_expr("a + b + c") == "a + b + c"

    def test_mul_over_add_needs_no_parens(self):
        assert print_expr("a + b * c") == "a + b * c"

    def test_add_under_mul_parenthesized(self):
        tree = create_binary(
            "*",
            create_binary("+", create_id("x"), create_id("y")),
            create_binary("+", create_id("m"), create_id("n")),
        )
        assert render_c(tree) == "(x + y) * (m + n)"

    def test_right_nested_subtraction_parenthesized(self):
        # a - (b - c) must keep its parens.
        tree = create_binary(
            "-", create_id("a"),
            create_binary("-", create_id("b"), create_id("c")),
        )
        assert render_c(tree) == "a - (b - c)"

    def test_logical_and_or(self):
        assert print_expr("a && b || c") == "a && b || c"
        tree = parse_expr("a && (b || c)")
        assert render_c(tree) == "a && (b || c)"

    def test_conditional(self):
        assert print_expr("a ? b : c") == "a ? b : c"

    def test_nested_conditional_right_assoc(self):
        assert print_expr("a ? b : c ? d : e") == "a ? b : c ? d : e"

    def test_assignment_chain(self):
        assert print_expr("a = b = c") == "a = b = c"

    def test_comma(self):
        assert print_expr("a, b, c") == "a, b, c"

    def test_comma_in_call_argument_parenthesized(self):
        tree = nodes.Call(
            create_id("f"),
            [nodes.CommaOp(create_id("a"), create_id("b"))],
        )
        assert render_c(tree) == "f((a, b))"

    def test_unary_minus_of_sum(self):
        tree = nodes.UnaryOp(
            "-", create_binary("+", create_id("a"), create_id("b"))
        )
        assert render_c(tree) == "-(a + b)"

    def test_double_negative_spaced(self):
        tree = nodes.UnaryOp("-", nodes.UnaryOp("-", create_id("a")))
        # Must not print '--a'.
        assert render_c(tree) != "--a"

    def test_prefix_vs_postfix_increment(self):
        assert print_expr("++i") == "++i"
        assert print_expr("i++") == "i++"

    def test_member_chain(self):
        assert print_expr("a.b->c") == "a.b->c"

    def test_index_and_call(self):
        assert print_expr("f(x)[3]") == "f(x)[3]"

    def test_deref_call(self):
        assert print_expr("(*fp)(x)") == "(*fp)(x)"

    def test_sizeof(self):
        assert print_expr("sizeof x") == "sizeof x"
        assert print_expr("sizeof(int)") == "sizeof(int)"

    def test_cast(self):
        assert print_expr("(long) x") == "(long)x"

    def test_string_literal(self):
        assert print_expr('"hi"') == '"hi"'


class TestDeclarators:
    def round_trip(self, source: str) -> None:
        unit = parse_c(source)
        assert_c_equal(render_c(unit), source)

    def test_simple(self):
        self.round_trip("int x;")

    def test_pointer(self):
        self.round_trip("int *p;")

    def test_pointer_to_pointer(self):
        self.round_trip("char **argv;")

    def test_array(self):
        self.round_trip("int a[10];")

    def test_array_of_pointers(self):
        self.round_trip("int *a[10];")

    def test_pointer_to_array(self):
        self.round_trip("int (*a)[10];")

    def test_function_pointer(self):
        self.round_trip("int (*fp)(int, char);")

    def test_function_returning_pointer(self):
        self.round_trip("int *f(void);")

    def test_multi_declarators(self):
        self.round_trip("int x, *y, z[3];")

    def test_initializer(self):
        self.round_trip("int x = 1 + 2;")

    def test_braced_initializer(self):
        self.round_trip("int a[3] = {1, 2, 3};")

    def test_qualifiers(self):
        self.round_trip("const volatile int x;")

    def test_storage_class(self):
        self.round_trip("static int x; extern long y;")

    def test_typedef(self):
        self.round_trip("typedef unsigned long size_type; size_type n;")

    def test_struct(self):
        self.round_trip("struct point {int x; int y;};")

    def test_struct_variable(self):
        self.round_trip("struct point {int x; int y;} origin;")

    def test_union(self):
        self.round_trip("union u {int i; float f;};")

    def test_enum(self):
        self.round_trip("enum color {red, green, blue};")

    def test_enum_with_values(self):
        self.round_trip("enum flags {a = 1, b = 2, c = 4};")

    def test_builder_simple_declaration(self):
        decl = create_simple_declaration(["int"], "x", create_num(5))
        assert render_c(decl) == "int x = 5;"


class TestStatements:
    def round_trip(self, source: str) -> None:
        wrapped = f"void f(void)\n{{{source}}}"
        unit = parse_c(wrapped)
        assert_c_equal(render_c(unit), wrapped)

    def test_expression_statement(self):
        self.round_trip("x = 1;")

    def test_if(self):
        self.round_trip("if (a) b();")

    def test_if_else(self):
        self.round_trip("if (a) b(); else c();")

    def test_while(self):
        self.round_trip("while (n > 0) n--;")

    def test_do_while(self):
        self.round_trip("do n--; while (n);")

    def test_for(self):
        self.round_trip("for (i = 0; i < n; i++) f(i);")

    def test_for_empty_clauses(self):
        self.round_trip("for (;;) stop();")

    def test_switch(self):
        self.round_trip(
            "switch (x) {case 1: a(); break; default: b(); break;}"
        )

    def test_goto_and_label(self):
        self.round_trip("again: x++; goto again;")

    def test_return(self):
        self.round_trip("return;")
        self.round_trip("return x + 1;")

    def test_null_statement(self):
        self.round_trip(";")

    def test_nested_compound(self):
        self.round_trip("{int y; y = 1; {y = 2;}}")

    def test_break_continue(self):
        self.round_trip("while (1) {if (a) break; continue;}")


class TestDanglingElse:
    def test_else_does_not_reassociate(self):
        # if (a) { if (b) x(); } else y();  — outer else
        inner = stmts.IfStmt(
            nodes.Identifier("b"),
            stmts.ExprStmt(nodes.Call(nodes.Identifier("x"), [])),
        )
        outer = stmts.IfStmt(
            nodes.Identifier("a"),
            inner,
            stmts.ExprStmt(nodes.Call(nodes.Identifier("y"), [])),
        )
        printed = render_c(outer)
        reparsed = parse_stmt(printed)
        # The printed form may brace the then-branch; what matters is
        # that the else re-attaches to the OUTER if on reparse.
        assert reparsed.cond == nodes.Identifier("a")
        assert reparsed.otherwise == outer.otherwise

    def test_else_after_while_if(self):
        inner = stmts.WhileStmt(
            nodes.Identifier("c"),
            stmts.IfStmt(
                nodes.Identifier("b"),
                stmts.ExprStmt(nodes.Call(nodes.Identifier("x"), [])),
            ),
        )
        outer = stmts.IfStmt(
            nodes.Identifier("a"),
            inner,
            stmts.ExprStmt(nodes.Call(nodes.Identifier("y"), [])),
        )
        printed = render_c(outer)
        reparsed = parse_stmt(printed)
        assert reparsed.cond == nodes.Identifier("a")
        assert reparsed.otherwise == outer.otherwise


class TestFunctions:
    def test_prototype_definition(self):
        src = "int add(int a, int b)\n{return a + b;}"
        assert_c_equal(render_c(parse_c(src)), src)

    def test_kr_definition(self):
        src = "int foo(a, b)\nint a;\nint b;\n{return a;}"
        assert_c_equal(render_c(parse_c(src)), src)

    def test_void_params(self):
        src = "void f(void)\n{;}"
        assert_c_equal(render_c(parse_c(src)), src)

    def test_variadic(self):
        src = "int printf(char *fmt, ...);"
        assert_c_equal(render_c(parse_c(src)), src)


class TestErrors:
    def test_unprintable_raises_typeerror(self):
        with pytest.raises(TypeError):
            render_c(object())
