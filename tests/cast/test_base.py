"""Tests for AST node base machinery: traversal, rebuild, clone, marks."""

from repro.cast import nodes, stmts
from repro.cast.base import (
    children,
    clone,
    node_fields,
    rebuild,
    set_mark,
    transform,
    walk,
)
from repro.errors import SourceLocation


def sample_tree() -> stmts.CompoundStmt:
    # { x = 1; f(y); }
    return stmts.CompoundStmt(
        [],
        [
            stmts.ExprStmt(
                nodes.AssignOp("=", nodes.Identifier("x"), nodes.IntLit(1))
            ),
            stmts.ExprStmt(
                nodes.Call(nodes.Identifier("f"), [nodes.Identifier("y")])
            ),
        ],
    )


class TestEquality:
    def test_structural_equality(self):
        assert sample_tree() == sample_tree()

    def test_location_is_ignored(self):
        a = nodes.Identifier("x", loc=SourceLocation(1, 1, 0))
        b = nodes.Identifier("x", loc=SourceLocation(99, 9, 200))
        assert a == b

    def test_mark_is_ignored(self):
        a = nodes.Identifier("x")
        b = nodes.Identifier("x", mark=7)
        assert a == b

    def test_different_names_unequal(self):
        assert nodes.Identifier("x") != nodes.Identifier("y")

    def test_different_classes_unequal(self):
        assert nodes.Identifier("x") != nodes.IntLit(1)

    def test_nested_difference_detected(self):
        a = sample_tree()
        b = sample_tree()
        b.stmts[0].expr.value = nodes.IntLit(2)
        assert a != b


class TestTraversal:
    def test_children_flattens_lists(self):
        tree = sample_tree()
        kids = list(children(tree))
        assert len(kids) == 2
        assert all(isinstance(k, stmts.ExprStmt) for k in kids)

    def test_walk_visits_every_node(self):
        count = sum(1 for _ in walk(sample_tree()))
        # compound + 2 exprstmts + assign + x + 1 + call + f + y
        assert count == 9

    def test_walk_preorder(self):
        order = [type(n).__name__ for n in walk(sample_tree())]
        assert order[0] == "CompoundStmt"
        assert order[1] == "ExprStmt"

    def test_node_fields_excludes_loc_and_mark(self):
        names = [f.name for f in node_fields(nodes.Identifier("x"))]
        assert names == ["name"]


class TestRebuild:
    def test_rebuild_identity(self):
        tree = sample_tree()
        rebuilt = rebuild(tree, lambda child: child)
        assert rebuilt == tree
        assert rebuilt is not tree

    def test_rebuild_replaces_nodes(self):
        tree = sample_tree()

        def swap(child):
            if isinstance(child, stmts.ExprStmt):
                return stmts.NullStmt()
            return child

        rebuilt = rebuild(tree, swap)
        assert all(isinstance(s, stmts.NullStmt) for s in rebuilt.stmts)

    def test_rebuild_splices_lists(self):
        tree = sample_tree()

        def duplicate(child):
            return [child, clone(child)]

        rebuilt = rebuild(tree, duplicate)
        assert len(rebuilt.stmts) == 4

    def test_transform_bottom_up(self):
        tree = sample_tree()

        def rename(node):
            if isinstance(node, nodes.Identifier) and node.name == "x":
                return nodes.Identifier("z")
            return node

        result = transform(tree, rename)
        assert result.stmts[0].expr.target.name == "z"
        # Original untouched.
        assert tree.stmts[0].expr.target.name == "x"


class TestClone:
    def test_clone_is_deep(self):
        tree = sample_tree()
        copy = clone(tree)
        assert copy == tree
        copy.stmts[0].expr.target.name = "changed"
        assert tree.stmts[0].expr.target.name == "x"

    def test_clone_preserves_marks(self):
        tree = nodes.Identifier("x", mark=5)
        assert clone(tree).mark == 5

    def test_clone_shares_non_node_values(self):
        inv = nodes.MacroInvocation("m", [], definition=object())
        copy = clone(inv)
        assert copy.definition is inv.definition


class TestMarks:
    def test_set_mark_stamps_subtree(self):
        tree = sample_tree()
        set_mark(tree, 3)
        assert all(n.mark == 3 for n in walk(tree))
