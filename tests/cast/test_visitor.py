"""Tests for the class-based visitor and collection helpers."""

from repro.cast import nodes, stmts
from repro.cast.visitor import NodeVisitor, collect, count_nodes
from tests.conftest import parse_c, parse_stmt


class TestNodeVisitor:
    def test_dispatch_by_class_name(self):
        seen = []

        class V(NodeVisitor):
            def visit_Identifier(self, node):
                seen.append(node.name)

            def generic_visit(self, node):
                for child in self._children(node):
                    self.visit(child)

            def _children(self, node):
                from repro.cast.base import children

                return children(node)

        V().visit(parse_stmt("{a = b; f(c);}"))
        assert seen == ["a", "b", "f", "c"]

    def test_generic_visit_recurses_by_default(self):
        counts = {"n": 0}

        class Counter(NodeVisitor):
            def visit_Call(self, node):
                counts["n"] += 1
                self.generic_visit(node)

        Counter().visit(parse_stmt("{f(g(x)); h();}"))
        assert counts["n"] == 3

    def test_return_value_propagates(self):
        class Finder(NodeVisitor):
            def visit_ReturnStmt(self, node):
                return "found"

        assert Finder().visit(parse_stmt("return;")) == "found"
        assert Finder().visit(parse_stmt("break;")) is None


class TestHelpers:
    def test_count_nodes(self):
        tree = parse_stmt("x = 1;")
        # ExprStmt, AssignOp, Identifier, IntLit.
        assert count_nodes(tree) == 4

    def test_collect(self):
        unit = parse_c("void f(void) {a(); b(); c();}")
        calls = collect(unit, nodes.Call)
        assert len(calls) == 3
        assert all(isinstance(c, nodes.Call) for c in calls)

    def test_collect_statements(self):
        unit = parse_c("void f(void) {if (a) b(); while (c) d();}")
        assert len(collect(unit, stmts.IfStmt)) == 1
        assert len(collect(unit, stmts.WhileStmt)) == 1
