"""Tests for the dynamic_bind package (paper section 4)."""

from repro.cast import decls, nodes
from repro.cast.base import walk
from repro.packages import dynbind


SOURCE = (
    "void demo(void) {"
    "  dynamic_bind {int printlength = 10}"
    "    {print_class_structure(gym_class);}"
    "}"
)


class TestDynamicBind:
    def test_save_rebind_restore_shape(self, mp):
        dynbind.register(mp)
        unit = mp.expand_to_ast(SOURCE)
        block = unit.items[0].body.stmts[0]
        # One declaration (the save slot) and three statements
        # (rebind, body, restore).
        assert len(block.decls) == 1
        assert len(block.stmts) == 3

    def test_save_slot_is_gensym(self, mp):
        dynbind.register(mp)
        unit = mp.expand_to_ast(SOURCE)
        block = unit.items[0].body.stmts[0]
        slot = block.decls[0].init_declarators[0].declarator.name
        assert slot.startswith("__")

    def test_rebind_uses_init_expression(self, mp):
        dynbind.register(mp)
        unit = mp.expand_to_ast(SOURCE)
        block = unit.items[0].body.stmts[0]
        rebind = block.stmts[0].expr
        assert rebind.target == nodes.Identifier("printlength")
        assert rebind.value == nodes.IntLit(10, "10")

    def test_restore_last(self, mp):
        dynbind.register(mp)
        unit = mp.expand_to_ast(SOURCE)
        block = unit.items[0].body.stmts[0]
        restore = block.stmts[-1].expr
        assert restore.target == nodes.Identifier("printlength")
        slot = block.decls[0].init_declarators[0].declarator.name
        assert restore.value == nodes.Identifier(slot)

    def test_type_parameter_respected(self, mp):
        dynbind.register(mp)
        unit = mp.expand_to_ast(
            "void f(void) { dynamic_bind {long depth = 1} {go();} }"
        )
        block = unit.items[0].body.stmts[0]
        assert block.decls[0].specs.type_spec.names == ["long"]

    def test_two_binds_use_distinct_slots(self, mp):
        dynbind.register(mp)
        unit = mp.expand_to_ast(
            "void f(void) {"
            "  dynamic_bind {int a = 1} {x();}"
            "  dynamic_bind {int b = 2} {y();}"
            "}"
        )
        slots = [
            d.name
            for d in walk(unit)
            if isinstance(d, decls.NameDeclarator) and d.name.startswith("__")
        ]
        assert len(slots) == 2
        assert slots[0] != slots[1]
