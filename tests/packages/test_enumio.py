"""Tests for the myenum reader/writer package (paper section 4)."""

from repro.cast import ctypes, decls
from repro.cast.base import walk
from repro.packages import enumio
from tests.conftest import assert_c_equal


SOURCE = "myenum fruit {apple, banana, kiwi};"


class TestExpansionShape:
    def test_three_declarations_produced(self, mp):
        enumio.register(mp)
        unit = mp.expand_to_ast(SOURCE)
        assert len(unit.items) == 3

    def test_enum_first(self, mp):
        enumio.register(mp)
        unit = mp.expand_to_ast(SOURCE)
        enum_decl = unit.items[0]
        ts = enum_decl.specs.type_spec
        assert isinstance(ts, ctypes.EnumType)
        assert ts.tag == "fruit"
        assert [e.name for e in ts.enumerators] == [
            "apple", "banana", "kiwi",
        ]

    def test_print_function_generated(self, mp):
        enumio.register(mp)
        unit = mp.expand_to_ast(SOURCE)
        fn = unit.items[1]
        assert isinstance(fn, decls.FunctionDef)
        from repro.parser.core import _declarator_name

        assert _declarator_name(fn.declarator) == "print_fruit"

    def test_read_function_generated(self, mp):
        enumio.register(mp)
        unit = mp.expand_to_ast(SOURCE)
        from repro.parser.core import _declarator_name

        assert _declarator_name(unit.items[2].declarator) == "read_fruit"

    def test_one_case_per_enumerator(self, mp):
        enumio.register(mp)
        out = mp.expand_to_c(SOURCE)
        for name in ("apple", "banana", "kiwi"):
            assert f"case {name}:" in out
            assert f'"{name}"' in out

    def test_read_function_strcmp_per_enumerator(self, mp):
        enumio.register(mp)
        out = mp.expand_to_c(SOURCE)
        assert out.count("strcmp") == 3


class TestPaperOutput:
    def test_matches_paper_expansion(self, mp):
        enumio.register(mp)
        out = mp.expand_to_c(SOURCE)
        assert_c_equal(
            out,
            """
            enum fruit {apple, banana, kiwi};
            void print_fruit(int arg)
            {
                switch (arg)
                {
                    case apple: printf("%s", "apple");
                    case banana: printf("%s", "banana");
                    case kiwi: printf("%s", "kiwi");
                }
            }
            int read_fruit(void)
            {
                char s[100];
                getline(s, 100);
                if (!strcmp(s, "apple")) return apple;
                if (!strcmp(s, "banana")) return banana;
                if (!strcmp(s, "kiwi")) return kiwi;
                return 0;
            }
            """,
        )


class TestVariations:
    def test_single_enumerator(self, mp):
        enumio.register(mp)
        out = mp.expand_to_c("myenum yn {yes};")
        assert "print_yn" in out
        assert "read_yn" in out
        assert out.count("strcmp") == 1

    def test_many_enumerators(self, mp):
        enumio.register(mp)
        names = ", ".join(f"v{i}" for i in range(20))
        out = mp.expand_to_c(f"myenum big {{{names}}};")
        assert out.count("case") == 20

    def test_two_enums_coexist(self, mp):
        enumio.register(mp)
        out = mp.expand_to_c(
            "myenum fruit {apple};\nmyenum color {red, green};"
        )
        assert "print_fruit" in out
        assert "print_color" in out

    def test_function_names_computed_from_enum_name(self, mp):
        enumio.register(mp)
        out = mp.expand_to_c("myenum error_types {division_by_zero};")
        assert "print_error_types" in out
        assert "read_error_types" in out
