"""Tests for the Painting package (paper sections 1 and 4)."""

from repro import MacroProcessor
from repro.packages import exceptions, painting
from tests.conftest import assert_c_equal


class TestSimplePainting:
    def test_brackets_body(self, mp):
        painting.register(mp)
        out = mp.expand_to_c(
            "void redraw(void) { Painting { draw_line(); } }"
        )
        assert_c_equal(
            out,
            "void redraw(void)"
            "{{BeginPaint(hDC, &ps); {draw_line();} EndPaint(hDC, &ps);}}",
        )

    def test_single_statement_body(self, mp):
        painting.register(mp)
        out = mp.expand_to_c("void f(void) { Painting draw(); }")
        assert "BeginPaint" in out
        assert out.index("BeginPaint") < out.index("draw")
        assert out.index("draw") < out.index("EndPaint")

    def test_nested_paintings(self, mp):
        painting.register(mp)
        out = mp.expand_to_c(
            "void f(void) { Painting { inner(); Painting outer(); } }"
        )
        assert out.count("BeginPaint") == 2
        assert out.count("EndPaint") == 2


class TestProtectedPainting:
    def test_uses_unwind_protect(self, mp):
        exceptions.register(mp)
        painting.register(mp, protected=True)
        out = mp.expand_to_c("void f(void) { Painting { draw(); } }")
        # The unwind_protect machinery appears in the expansion.
        assert "setjmp" in out
        assert "EndPaint" in out

    def test_endpaint_in_cleanup_position(self, mp):
        exceptions.register(mp)
        painting.register(mp, protected=True)
        unit = mp.expand_to_ast("void f(void) { Painting { draw(); } }")
        # EndPaint must run after the setjmp-guarded body.
        out = mp.expand_to_c("void f(void) { Painting { draw(); } }")
        assert out.index("setjmp") < out.index("EndPaint")

    def test_user_need_not_know(self, mp):
        # Same user-facing syntax for both variants.
        source = "void f(void) { Painting { draw(); } }"
        simple = MacroProcessor()
        painting.register(simple)
        simple.expand_to_c(source)

        protected = MacroProcessor()
        exceptions.register(protected)
        painting.register(protected, protected=True)
        protected.expand_to_c(source)
