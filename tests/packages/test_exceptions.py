"""Tests for the exception-handling package (paper section 4)."""

import pytest

from repro.cast import nodes, stmts
from repro.cast.base import walk
from repro.packages import exceptions


def count_calls(unit, name: str) -> int:
    return sum(
        1
        for n in walk(unit)
        if isinstance(n, nodes.Call)
        and n.func == nodes.Identifier(name)
    )


class TestThrow:
    def test_simple_value_inlined(self, mp):
        exceptions.register(mp)
        unit = mp.expand_to_ast("void f(void) { throw my_tag; }")
        # Simple expression: no temporary introduced.
        names = {
            n.name for n in walk(unit) if isinstance(n, nodes.Identifier)
        }
        assert "the_value" not in names
        assert count_calls(unit, "longjmp") == 1

    def test_complex_value_gets_temporary(self, mp):
        exceptions.register(mp)
        unit = mp.expand_to_ast("void f(void) { throw compute() + 1; }")
        names = {
            n.name for n in walk(unit) if isinstance(n, nodes.Identifier)
        }
        assert "the_value" in names

    def test_no_handler_branch(self, mp):
        exceptions.register(mp)
        out = mp.expand_to_c("void f(void) { throw e; }")
        assert "exception_ptr == 0" in out
        assert "error_handler" in out


class TestCatch:
    SOURCE = (
        "void f(void) {"
        "  catch my_tag {handle();} {risky();}"
        "}"
    )

    def test_setjmp_established(self, mp):
        exceptions.register(mp)
        unit = mp.expand_to_ast(self.SOURCE)
        assert count_calls(unit, "setjmp") == 1

    def test_handler_guarded_by_tag(self, mp):
        exceptions.register(mp)
        out = mp.expand_to_c(self.SOURCE)
        assert "result == my_tag" in out

    def test_rethrow_for_other_tags(self, mp):
        exceptions.register(mp)
        unit = mp.expand_to_ast(self.SOURCE)
        # The embedded `throw result;` expanded into a longjmp call.
        assert count_calls(unit, "longjmp") == 1

    def test_saves_and_restores_handler_stack(self, mp):
        exceptions.register(mp)
        out = mp.expand_to_c(self.SOURCE)
        assert "old_exception_ptr = exception_ptr" in out
        assert "exception_ptr = old_exception_ptr" in out

    def test_body_runs_under_handler(self, mp):
        exceptions.register(mp)
        out = mp.expand_to_c(self.SOURCE)
        assert out.index("setjmp") < out.index("risky")


class TestUnwindProtect:
    SOURCE = (
        "void f(void) {"
        "  unwind_protect {start_faucet_running();} {stop_faucet();}"
        "}"
    )

    def test_cleanup_present_on_both_paths(self, mp):
        exceptions.register(mp)
        out = mp.expand_to_c(self.SOURCE)
        # Cleanup is emitted once, after the protected region.
        assert out.count("stop_faucet") == 1
        assert out.index("start_faucet_running") < out.index("stop_faucet")

    def test_rethrow_after_cleanup(self, mp):
        exceptions.register(mp)
        out = mp.expand_to_c(self.SOURCE)
        assert "result != 0" in out
        assert out.index("stop_faucet") < out.index("longjmp")


class TestFooExample:
    """The paper's full foo() example."""

    SOURCE = """
int foo(a, b, c)
int a, b;
int *c;
{
    int z;
    z = a + b;
    catch division_by_zero
        {printf("%s", "You lose, division by zero.");}
        {*c = freq(z, a);}
    unwind_protect {start_faucet_running();}
        {stop_faucet();}
    return(z);
}
"""

    def test_expands_cleanly(self, mp):
        exceptions.register(mp)
        out = mp.expand_to_c(self.SOURCE)
        assert "You lose" in out
        assert out.count("setjmp") == 2

    def test_expansion_count(self, mp):
        exceptions.register(mp)
        mp.expand_to_c(self.SOURCE)
        # catch (+ its embedded throw) + unwind_protect (+ its throw).
        assert mp.expansion_count == 4

    def test_kr_function_preserved(self, mp):
        exceptions.register(mp)
        out = mp.expand_to_c(self.SOURCE)
        assert "int foo(a, b, c)" in out


class TestMetaProgramInvisible:
    def test_no_meta_items_in_output(self, mp):
        exceptions.register(mp)
        out = mp.expand_to_c("void f(void) { throw e; }")
        assert "syntax" not in out
        assert "metadcl" not in out
        assert "`" not in out
