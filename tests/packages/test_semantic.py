"""Tests for the semantic-macro package (paper section 5)."""

import pytest

from repro import MacroProcessor
from repro.errors import ExpansionError
from repro.packages import semantic


@pytest.fixture()
def smp():
    mp = MacroProcessor()
    semantic.register(mp)
    return mp


class TestTypeOf:
    def test_global_scope(self, smp):
        out = smp.expand_to_c(
            "long counter;\n"
            "void f(void) { sdynamic_bind {counter = 1} {go();} }"
        )
        assert "long __" in out

    def test_local_scope(self, smp):
        out = smp.expand_to_c(
            "void f(void) { int depth; sdynamic_bind {depth = 1} {g();} }"
        )
        assert "int __" in out

    def test_parameter_scope(self, smp):
        out = smp.expand_to_c(
            "void f(float rate) { sdynamic_bind {rate = 0} {g();} }"
        )
        assert "float __" in out

    def test_inner_shadows_outer(self, smp):
        out = smp.expand_to_c(
            "int x;\n"
            "void f(void) { char x; sdynamic_bind {x = 0} {g();} }"
        )
        assert "char __" in out

    def test_typedef_types_flow_through(self, smp):
        out = smp.expand_to_c(
            "typedef unsigned long size_type;\n"
            "void f(void) { size_type n; sdynamic_bind {n = 0} {g();} }"
        )
        assert "size_type __" in out

    def test_unknown_name_is_expansion_error(self, smp):
        with pytest.raises(ExpansionError) as exc:
            smp.expand_to_c(
                "void f(void) { sdynamic_bind {mystery = 1} {g();} }"
            )
        assert "mystery" in str(exc.value)

    def test_out_of_scope_after_block(self, smp):
        # A local from a *previous* block is no longer in scope.
        with pytest.raises(ExpansionError):
            smp.expand_to_c(
                "void f(void) {"
                "  { int gone; gone = 1; }"
                "  sdynamic_bind {gone = 2} {g();}"
                "}"
            )


class TestTypeDispatch:
    def test_int_gets_d(self, smp):
        out = smp.expand_to_c("void f(int n) { show(n); }")
        assert '"%s = %d"' in out

    def test_long_gets_ld(self, smp):
        out = smp.expand_to_c("void f(void) { long n; show(n); }")
        assert '"%s = %ld"' in out

    def test_float_gets_f(self, smp):
        out = smp.expand_to_c("void f(float x) { show(x); }")
        assert '"%s = %f"' in out

    def test_double_gets_f(self, smp):
        out = smp.expand_to_c("void f(void) { double x; show(x); }")
        assert '"%s = %f"' in out

    def test_char_gets_c(self, smp):
        out = smp.expand_to_c("void f(char c) { show(c); }")
        assert '"%s = %c"' in out

    def test_other_gets_p(self, smp):
        out = smp.expand_to_c(
            "struct s {int x;};\n"
            "void f(void) { struct s v; show(v); }"
        )
        assert '"%s = %p"' in out

    def test_no_dispatch_survives_to_runtime(self, smp):
        out = smp.expand_to_c("void f(int n) { show(n); }")
        assert "if" not in out


class TestSswap:
    def test_uses_declared_type(self, smp):
        out = smp.expand_to_c(
            "void f(void) { double a; double b; sswap(a, b); }"
        )
        assert "double __" in out

    def test_no_type_annotation_needed(self, smp):
        # Compare with loops.swap which requires '(int, a, b)'.
        out = smp.expand_to_c("void f(int a, int b) { sswap(a, b); }")
        assert "int __" in out
