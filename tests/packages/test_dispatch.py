"""Tests for the window-procedure code-rearrangement package."""

import pytest

from repro.cast import decls, stmts
from repro.errors import ExpansionError
from repro.packages import dispatch


PROGRAM = """
new_window_proc wproc default DefWindowProc;

window_proc_dispatch(wproc, WM_DESTROY)
  {KillTimer(hWnd, idTimer);
   PostQuitMessage(0);}

window_proc_dispatch(wproc, WM_CREATE)
  {idTimer = SetTimer(hWnd, 77, 5000, 0);}

emit_window_proc wproc;
"""


class TestAccumulation:
    def test_registration_macros_expand_to_nothing(self, mp):
        dispatch.register(mp)
        unit = mp.expand_to_ast(
            "new_window_proc w default Def;\nint keep;"
        )
        # Only the typedefs from the package... are not in user unit;
        # just 'int keep;' remains.
        kinds = [type(i).__name__ for i in unit.items]
        assert kinds == ["Declaration"]

    def test_emit_produces_function(self, mp):
        dispatch.register(mp)
        unit = mp.expand_to_ast(PROGRAM)
        functions = [
            i for i in unit.items if isinstance(i, decls.FunctionDef)
        ]
        assert len(functions) == 1

    def test_dispatch_cases_collected(self, mp):
        dispatch.register(mp)
        out = mp.expand_to_c(PROGRAM)
        assert "case WM_DESTROY:" in out
        assert "case WM_CREATE:" in out
        assert "DefWindowProc(hWnd, message, wParam, lParam)" in out

    def test_matches_paper_structure(self, mp):
        dispatch.register(mp)
        out = mp.expand_to_c(PROGRAM)
        assert (
            "int wproc(HWND hWnd, UINT message, WPARAM wParam, "
            "LPARAM lParam)" in out
        )
        assert "KillTimer(hWnd, idTimer)" in out
        assert "SetTimer(hWnd, 77, 5000, 0)" in out

    def test_default_comes_first(self, mp):
        dispatch.register(mp)
        out = mp.expand_to_c(PROGRAM)
        assert out.index("default:") < out.index("case WM_DESTROY:")


class TestMultipleProcs:
    def test_two_procs_keep_separate_cases(self, mp):
        dispatch.register(mp)
        out = mp.expand_to_c("""
new_window_proc alpha default DefA;
new_window_proc beta default DefB;
window_proc_dispatch(alpha, MSG_A) {handle_a();}
window_proc_dispatch(beta, MSG_B) {handle_b();}
emit_window_proc alpha;
emit_window_proc beta;
""")
        alpha_body = out[out.index("int alpha"):out.index("int beta")]
        assert "MSG_A" in alpha_body
        assert "MSG_B" not in alpha_body

    def test_unknown_proc_is_expansion_error(self, mp):
        dispatch.register(mp)
        with pytest.raises(ExpansionError) as exc:
            mp.expand_to_c("emit_window_proc mystery;")
        assert "unknown window procedure" in str(exc.value)


class TestOrderIndependence:
    def test_dispatches_after_other_code(self, mp):
        dispatch.register(mp)
        out = mp.expand_to_c("""
new_window_proc w default Def;
int unrelated;
window_proc_dispatch(w, MSG_X) {x();}
long more_unrelated;
emit_window_proc w;
""")
        assert "case MSG_X:" in out
        assert "int unrelated;" in out
