"""Tests for the serializable-struct package (routine code from data
declarations, paper section 4)."""

from repro.cast import ctypes, decls
from repro.packages import structio
from repro.parser.core import _declarator_name


SOURCE = "serializable point { int x; int y; };"


class TestExpansionShape:
    def test_three_declarations(self, mp):
        structio.register(mp)
        unit = mp.expand_to_ast(SOURCE)
        assert len(unit.items) == 3

    def test_struct_preserved(self, mp):
        structio.register(mp)
        unit = mp.expand_to_ast(SOURCE)
        ts = unit.items[0].specs.type_spec
        assert isinstance(ts, ctypes.StructOrUnionType)
        assert ts.tag == "point"
        assert len(ts.members) == 2

    def test_print_function_per_field(self, mp):
        structio.register(mp)
        out = mp.expand_to_c(SOURCE)
        assert 'print_field("x", p->x);' in out
        assert 'print_field("y", p->y);' in out

    def test_pack_function(self, mp):
        structio.register(mp)
        out = mp.expand_to_c(SOURCE)
        assert "int pack_point(struct point *p, char *buf)" in out
        assert out.count("pack_value") == 2

    def test_function_names_derived(self, mp):
        structio.register(mp)
        unit = mp.expand_to_ast(SOURCE)
        names = [
            _declarator_name(i.declarator)
            for i in unit.items
            if isinstance(i, decls.FunctionDef)
        ]
        assert names == ["print_point", "pack_point"]


class TestFieldTypes:
    def test_pointer_fields(self, mp):
        structio.register(mp)
        out = mp.expand_to_c("serializable node { int value; };")
        assert "p->value" in out

    def test_many_fields(self, mp):
        structio.register(mp)
        fields = " ".join(f"int f{i};" for i in range(10))
        out = mp.expand_to_c(f"serializable wide {{ {fields} }};")
        assert out.count("print_field") == 10

    def test_two_structs_independent(self, mp):
        structio.register(mp)
        out = mp.expand_to_c(
            "serializable a { int x; };\nserializable b { int y; };"
        )
        assert "print_a" in out and "print_b" in out


class TestMemberNamePlaceholders:
    def test_template_member_access(self, mp):
        # The machinery behind p->$(f.name), tested directly.
        mp.load(
            "syntax exp getx {| ( $$id::field ) |}"
            "{ return(`(rec->$field)); }"
        )
        out = mp.expand_to_c("int v = getx(size);")
        assert "rec->size" in out

    def test_dot_member_placeholder(self, mp):
        mp.load(
            "syntax exp get2 {| ( $$id::field ) |}"
            "{ return(`(rec.$field)); }"
        )
        out = mp.expand_to_c("int v = get2(size);")
        assert "rec.size" in out
