"""Tests for the design-by-contract package."""

import pytest

from repro import MacroProcessor
from repro.packages import contracts


@pytest.fixture()
def cmp_():
    mp = MacroProcessor()
    contracts.register(mp)
    return mp


class TestRequire:
    def test_negated_condition_guard(self, cmp_):
        out = cmp_.expand_to_c(
            "void f(int n) { require (n > 0); }"
        )
        assert "if (!(n > 0))" in out

    def test_condition_text_stringized(self, cmp_):
        out = cmp_.expand_to_c(
            "void f(int n) { require (n > 0 && n < 10); }"
        )
        assert '"n > 0 && n < 10"' in out

    def test_kind_labels(self, cmp_):
        out = cmp_.expand_to_c(
            "void f(int n) { require (n); ensure (n); }"
        )
        assert '"precondition"' in out
        assert '"postcondition"' in out

    def test_stringizes_canonical_form(self, cmp_):
        # The AST is stringized, so redundant user parens vanish:
        # canonical output, not raw tokens.
        out = cmp_.expand_to_c(
            "void f(int n) { require ((n) > (0)); }"
        )
        assert '"n > 0"' in out


class TestCheckRange:
    def test_simple_value_not_duplicated_into_temp(self, cmp_):
        out = cmp_.expand_to_c(
            "void f(int i) { check_range (i, 0, 9); }"
        )
        assert "the_value" not in out
        assert "i < 0 || i > 9" in out

    def test_compound_value_gets_temporary(self, cmp_):
        out = cmp_.expand_to_c(
            "void f(void) { check_range (next_index(), 0, 9); }"
        )
        assert "int the_value = next_index();" in out
        # Evaluated exactly once; the second occurrence is the quoted
        # stringized condition in the diagnostic.
        assert out.count("next_index()") == 2
        assert out.count('"next_index()"') == 1

    def test_range_label_and_text(self, cmp_):
        out = cmp_.expand_to_c(
            "void f(int i) { check_range (i, 0, 9); }"
        )
        assert '"range"' in out
        assert '"i"' in out


class TestComposition:
    def test_contract_inside_other_macros(self):
        from repro.packages import loops

        mp = MacroProcessor()
        contracts.register(mp)
        loops.register(mp)
        out = mp.expand_to_c(
            "void f(int i, int n) {"
            "  for_range i = 0 to n { require (i <= n); }"
            "}"
        )
        assert "for (i = 0; i <= n; i++)" in out
        assert "contract_violation" in out
