"""Tests for the portability-VM package (paper section 4)."""

import pytest

from repro import MacroProcessor
from repro.errors import ExpansionError
from repro.packages import portvm


PROGRAM = """
void worker(int h)
{
    vm_open(h, path);
    vm_sleep(50);
    vm_yield();
    vm_close(h);
}
"""


def expand(target: str | None) -> str:
    mp = MacroProcessor()
    portvm.register(mp)
    prefix = f"vm_target {target};\n" if target else ""
    return mp.expand_to_c(prefix + PROGRAM)


class TestTargets:
    def test_default_is_unix(self):
        out = expand(None)
        assert "open(path, 0)" in out
        assert "usleep" in out

    def test_unix_explicit(self):
        out = expand("unix")
        assert "sched_yield()" in out
        assert "close(h)" in out

    def test_windows(self):
        out = expand("windows")
        assert "CreateFile(path, GENERIC_READ)" in out
        assert "Sleep(50)" in out
        assert "SwitchToThread()" in out
        assert "CloseHandle(h)" in out

    def test_no_runtime_dispatch_survives(self):
        # The whole point: no if/switch on the target in the output.
        for target in ("unix", "windows"):
            out = expand(target)
            assert "vm_target_kind" not in out
            assert "if" not in out

    def test_unknown_target_is_expansion_error(self):
        mp = MacroProcessor()
        portvm.register(mp)
        with pytest.raises(ExpansionError) as exc:
            mp.expand_to_c("vm_target beos;")
        assert "unknown target" in str(exc.value)


class TestExpressionsFlowThrough:
    def test_argument_expressions_preserved(self):
        mp = MacroProcessor()
        portvm.register(mp)
        out = mp.expand_to_c(
            "void f(void) { vm_sleep(base + jitter() * 2); }"
        )
        assert "(base + jitter() * 2) * 1000" in out

    def test_target_switch_mid_file(self):
        # Expansion-time state: code before the switch uses unix,
        # code after uses windows.
        mp = MacroProcessor()
        portvm.register(mp)
        out = mp.expand_to_c(
            "void a(void) { vm_yield(); }\n"
            "vm_target windows;\n"
            "void b(void) { vm_yield(); }\n"
        )
        assert out.index("sched_yield") < out.index("SwitchToThread")
