"""Tests for the control-construct package."""

import pytest

from repro.cast import nodes, stmts
from repro.packages import loops
from tests.conftest import assert_c_equal


class TestForever:
    def test_expands_to_while_one(self, mp):
        loops.register(mp)
        unit = mp.expand_to_ast("void f(void) { forever { poll(); } }")
        loop = unit.items[0].body.stmts[0]
        assert isinstance(loop, stmts.WhileStmt)
        assert loop.cond == nodes.IntLit(1, "1")


class TestUnless:
    def test_negates_condition(self, mp):
        loops.register(mp)
        out = mp.expand_to_c("void f(void) { unless (ready) wait(); }")
        assert "if (!(ready))" in out or "if (!ready)" in out

    def test_complex_condition_encapsulated(self, mp):
        loops.register(mp)
        unit = mp.expand_to_ast(
            "void f(void) { unless (a || b) wait(); }"
        )
        cond = unit.items[0].body.stmts[0].cond
        # !(a || b), never !a || b.
        assert isinstance(cond, nodes.UnaryOp)
        assert isinstance(cond.operand, nodes.BinaryOp)


class TestForRange:
    def test_without_step(self, mp):
        loops.register(mp)
        unit = mp.expand_to_ast(
            "void f(void) { int i; for_range i = 1 to 10 { work(i); } }"
        )
        loop = unit.items[0].body.stmts[0]
        assert isinstance(loop, stmts.ForStmt)
        assert isinstance(loop.step, nodes.PostfixOp)

    def test_with_step(self, mp):
        loops.register(mp)
        unit = mp.expand_to_ast(
            "void f(void) { int i; for_range i = 0 to 100 step 5 {w();} }"
        )
        loop = unit.items[0].body.stmts[0]
        assert isinstance(loop.step, nodes.AssignOp)

    def test_bounds_are_expressions(self, mp):
        loops.register(mp)
        out = mp.expand_to_c(
            "void f(void) { int i; for_range i = lo() to hi() + 1 {w();} }"
        )
        assert "i = lo()" in out
        assert "i <= hi() + 1" in out

    def test_empty_body(self, mp):
        loops.register(mp)
        out = mp.expand_to_c(
            "void f(void) { int i; for_range i = 0 to 3 {} }"
        )
        assert "for (i = 0; i <= 3; i++)" in out


class TestWithResource:
    def test_acquire_use_release(self, mp):
        loops.register(mp)
        out = mp.expand_to_c(
            "void f(void) { with_resource (open_db(), close_db()) "
            "{ query(); } }"
        )
        assert out.index("open_db") < out.index("query")
        assert out.index("query") < out.index("close_db")


class TestSwap:
    def test_uses_gensym_temporary(self, mp):
        loops.register(mp)
        unit = mp.expand_to_ast("void f(void) { swap(int, a, b); }")
        block = unit.items[0].body.stmts[0]
        tmp = block.decls[0].init_declarators[0].declarator.name
        assert tmp.startswith("__")

    def test_no_capture_with_user_tmp(self, mp):
        loops.register(mp)
        out = mp.expand_to_c(
            "void f(int tmp, int b) { swap(int, tmp, b); }"
        )
        # Exactly one temp declaration; user's 'tmp' is untouched in
        # the swap statements.
        assert "tmp = b" in out

    def test_typed_temporary(self, mp):
        loops.register(mp)
        unit = mp.expand_to_ast("void f(void) { swap(long, a, b); }")
        block = unit.items[0].body.stmts[0]
        assert block.decls[0].specs.type_spec.names == ["long"]


class TestUnroll:
    def test_literal_count(self, mp):
        loops.register(mp)
        unit = mp.expand_to_ast("void f(void) { unroll (3) step(); }")
        block = unit.items[0].body.stmts[0]
        assert len(block.stmts) == 3

    def test_constant_expression_count(self, mp):
        loops.register(mp)
        unit = mp.expand_to_ast(
            "void f(void) { unroll (2 * 2 + 1) step(); }"
        )
        block = unit.items[0].body.stmts[0]
        assert len(block.stmts) == 5

    def test_zero_count_empty_block(self, mp):
        loops.register(mp)
        unit = mp.expand_to_ast("void f(void) { unroll (0) step(); }")
        block = unit.items[0].body.stmts[0]
        assert block.stmts == []

    def test_negative_count_rejected(self, mp):
        from repro.errors import ExpansionError

        loops.register(mp)
        with pytest.raises(ExpansionError):
            mp.expand_to_c("void f(void) { unroll (1 - 2) step(); }")

    def test_non_constant_rejected(self, mp):
        from repro.errors import ExpansionError

        loops.register(mp)
        with pytest.raises(ExpansionError):
            mp.expand_to_c("void f(void) { unroll (runtime()) step(); }")


class TestComposition:
    def test_loop_inside_unless_inside_forever(self, mp):
        loops.register(mp)
        out = mp.expand_to_c(
            "void f(void) { int i; forever { unless (done()) "
            "{ for_range i = 0 to 3 { tick(); } } } }"
        )
        assert "while (1)" in out
        assert "if (!(done()))" in out or "if (!done())" in out
        assert "for (i = 0; i <= 3; i++)" in out
