"""Tests for the state-machine DSL package."""

import pytest

from repro import MacroProcessor
from repro.cast import decls
from repro.errors import ParseError
from repro.packages import statemachine


DOOR = """
state_machine door {
    state closed { on open_cmd go opening }
    state opening { on opened go open_wide, on obstruction go closed }
    state open_wide { }
};
"""


@pytest.fixture()
def smp():
    mp = MacroProcessor()
    statemachine.register(mp)
    return mp


class TestExpansion:
    def test_two_declarations(self, smp):
        unit = smp.expand_to_ast(DOOR)
        assert len(unit.items) == 2

    def test_states_enum(self, smp):
        out = smp.expand_to_c(DOOR)
        assert "enum door_states {closed, opening, open_wide};" in out

    def test_step_function_signature(self, smp):
        out = smp.expand_to_c(DOOR)
        assert "int door_step(int state, int event)" in out

    def test_one_case_per_state(self, smp):
        out = smp.expand_to_c(DOOR)
        for state in ("closed", "opening", "open_wide"):
            assert f"case {state}:" in out

    def test_transitions_become_ifs(self, smp):
        out = smp.expand_to_c(DOOR)
        assert "if (event == open_cmd)" in out
        assert "return opening;" in out
        assert "if (event == obstruction)" in out

    def test_empty_state_just_breaks(self, smp):
        out = smp.expand_to_c(DOOR)
        # open_wide has no transitions: its case holds only break.
        idx = out.index("case open_wide:")
        tail = out[idx:]
        assert "if" not in tail.split("}")[0]

    def test_default_self_transition(self, smp):
        out = smp.expand_to_c(DOOR)
        assert "return state;" in out


class TestVariations:
    def test_single_state_machine(self, smp):
        out = smp.expand_to_c(
            "state_machine loop { state only { on tick go only } };"
        )
        assert "enum loop_states {only};" in out
        assert "return only;" in out

    def test_many_transitions(self, smp):
        transitions = ", ".join(f"on e{i} go s" for i in range(12))
        out = smp.expand_to_c(
            f"state_machine m {{ state s {{ {transitions} }} }};"
        )
        assert out.count("if (event ==") == 12

    def test_two_machines_coexist(self, smp):
        out = smp.expand_to_c(
            "state_machine a { state x { } };\n"
            "state_machine b { state y { } };"
        )
        assert "a_step" in out and "b_step" in out

    def test_missing_brace_is_users_syntax_error(self, smp):
        with pytest.raises(ParseError):
            smp.expand_to_c(
                "state_machine bad { state s on e go s } };"
            )


class TestGeneratedCodeIsPlainC(object):
    def test_reparses_without_macros(self, smp):
        from repro.parser.core import Parser

        out = smp.expand_to_c(DOOR)
        unit = Parser(out).parse_program()
        assert len(unit.items) == 2
        assert isinstance(unit.items[1], decls.FunctionDef)
