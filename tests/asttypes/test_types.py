"""Tests for the AST type lattice."""

import pytest

from repro.asttypes.types import (
    ANY,
    CHAR,
    DECL,
    EXP,
    ID,
    INT,
    NUM,
    STMT,
    STRING,
    CType,
    FuncType,
    ListType,
    PrimType,
    TupleType,
    list_of,
    prim,
)


class TestPrimitives:
    def test_singletons(self):
        assert prim("stmt") is STMT
        assert prim("exp") is EXP
        assert prim("id") is ID

    def test_all_eight_primitives(self):
        for name in ("id", "exp", "stmt", "decl", "num", "type_spec",
                     "declarator", "init_declarator"):
            assert prim(name).name == name

    def test_unknown_primitive_rejected(self):
        with pytest.raises(ValueError):
            prim("statement")
        with pytest.raises(ValueError):
            PrimType("bogus")

    def test_str(self):
        assert str(STMT) == "stmt"
        assert str(list_of(ID)) == "id[]"


class TestSubtyping:
    def test_exact_match(self):
        assert STMT.is_usable_as(STMT)
        assert not STMT.is_usable_as(DECL)

    def test_id_is_an_expression(self):
        assert ID.is_usable_as(EXP)

    def test_num_is_an_expression(self):
        assert NUM.is_usable_as(EXP)

    def test_exp_is_not_an_id(self):
        assert not EXP.is_usable_as(ID)

    def test_stmt_is_not_an_expression(self):
        assert not STMT.is_usable_as(EXP)

    def test_declarator_types_distinct(self):
        # Figure 2 depends on these being distinguishable.
        assert not prim("declarator").is_usable_as(prim("init_declarator"))
        assert not prim("init_declarator").is_usable_as(prim("declarator"))
        assert not ID.is_usable_as(prim("declarator"))

    def test_any_compatible_both_ways(self):
        assert ANY.is_usable_as(STMT)
        assert STMT.is_usable_as(ANY)


class TestLists:
    def test_covariance(self):
        assert list_of(ID).is_usable_as(list_of(EXP))
        assert not list_of(EXP).is_usable_as(list_of(ID))

    def test_list_not_usable_as_element(self):
        assert not list_of(STMT).is_usable_as(STMT)
        assert not STMT.is_usable_as(list_of(STMT))

    def test_is_ast(self):
        assert list_of(STMT).is_ast()


class TestTuples:
    def test_field_lookup(self):
        t = TupleType((("name", ID), ("body", STMT)))
        assert t.field_type("name") is ID
        assert t.field_type("missing") is None

    def test_compatibility_by_structure(self):
        a = TupleType((("x", ID),))
        b = TupleType((("x", ID),))
        c = TupleType((("y", ID),))
        assert a.is_usable_as(b)
        assert not a.is_usable_as(c)

    def test_width_must_match(self):
        a = TupleType((("x", ID),))
        b = TupleType((("x", ID), ("y", ID)))
        assert not a.is_usable_as(b)

    def test_str(self):
        t = TupleType((("name", ID),))
        assert str(t) == "{id name}"


class TestCTypes:
    def test_char_int_interchangeable(self):
        assert CHAR.is_usable_as(INT)
        assert INT.is_usable_as(CHAR)

    def test_string_is_not_int(self):
        assert not STRING.is_usable_as(INT)

    def test_not_ast(self):
        assert not INT.is_ast()
        assert not CType("float").is_ast()

    def test_ctype_not_usable_as_ast(self):
        assert not INT.is_usable_as(EXP)


class TestFuncTypes:
    def test_str(self):
        f = FuncType((ID,), STMT)
        assert str(f) == "(id) -> stmt"

    def test_variadic_str(self):
        f = FuncType((STRING,), INT, variadic=True)
        assert "..." in str(f)

    def test_not_ast(self):
        assert not FuncType((), STMT).is_ast()
