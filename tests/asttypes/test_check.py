"""Tests for definition-time type inference over meta-expressions."""

import pytest

from repro.asttypes.types import (
    EXP,
    ID,
    INT,
    STMT,
    STRING,
    FuncType,
    TupleType,
    list_of,
    prim,
)
from repro.errors import MacroTypeError
from tests.conftest import parse_meta_expr


class TestLiteralsAndNames:
    def test_int_literal(self):
        _, t = parse_meta_expr("42")
        assert t == INT

    def test_string_literal(self):
        _, t = parse_meta_expr('"hi"')
        assert t == STRING

    def test_bound_variable(self):
        _, t = parse_meta_expr("s", {"s": STMT})
        assert t == STMT

    def test_unbound_variable_rejected(self):
        with pytest.raises(MacroTypeError) as exc:
            parse_meta_expr("nope")
        assert "undeclared" in str(exc.value)


class TestListOperations:
    def test_head_via_star(self):
        # *xs is car (paper section 2).
        _, t = parse_meta_expr("*xs", {"xs": list_of(ID)})
        assert t == ID

    def test_tail_via_plus_one(self):
        # xs + 1 is cdr.
        _, t = parse_meta_expr("xs + 1", {"xs": list_of(ID)})
        assert t == list_of(ID)

    def test_indexing(self):
        _, t = parse_meta_expr("xs[0]", {"xs": list_of(STMT)})
        assert t == STMT

    def test_index_must_be_int(self):
        with pytest.raises(MacroTypeError):
            parse_meta_expr('xs["a"]', {"xs": list_of(STMT)})

    def test_deref_of_non_list_rejected(self):
        with pytest.raises(MacroTypeError):
            parse_meta_expr("*s", {"s": STMT})

    def test_address_of_ast_rejected(self):
        # "It is illegal to take the address of either a scalar or
        # structured ast value."
        with pytest.raises(MacroTypeError):
            parse_meta_expr("&s", {"s": STMT})


class TestArithmetic:
    def test_int_ops(self):
        _, t = parse_meta_expr("1 + 2 * 3")
        assert t == INT

    def test_comparison(self):
        _, t = parse_meta_expr("i < n", {"i": INT, "n": INT})
        assert t == INT

    def test_ast_equality_allowed(self):
        _, t = parse_meta_expr("a == b", {"a": ID, "b": ID})
        assert t == INT

    def test_arith_on_ast_rejected(self):
        with pytest.raises(MacroTypeError):
            parse_meta_expr("s * 2", {"s": STMT})

    def test_conditional_branches_must_agree(self):
        with pytest.raises(MacroTypeError):
            parse_meta_expr("c ? s : i", {"c": INT, "s": STMT, "i": ID})

    def test_conditional_join(self):
        _, t = parse_meta_expr("c ? x : y", {"c": INT, "x": ID, "y": EXP})
        assert t == EXP


class TestAssignment:
    def test_compatible(self):
        _, t = parse_meta_expr("x = y", {"x": EXP, "y": ID})
        assert t == EXP

    def test_incompatible_rejected(self):
        with pytest.raises(MacroTypeError):
            parse_meta_expr("x = s", {"x": ID, "s": STMT})

    def test_compound_assignment_needs_scalars(self):
        with pytest.raises(MacroTypeError):
            parse_meta_expr("x += s", {"x": INT, "s": STMT})


class TestComponents:
    def test_stmt_declarations(self):
        _, t = parse_meta_expr("s.declarations", {"s": STMT})
        assert t == list_of(prim("decl"))

    def test_decl_type_spec(self):
        _, t = parse_meta_expr("d.type_spec", {"d": prim("decl")})
        assert t == prim("type_spec")

    def test_unknown_component_rejected(self):
        with pytest.raises(MacroTypeError):
            parse_meta_expr("s.frobnicate", {"s": STMT})

    def test_tuple_field(self):
        tup = TupleType((("name", ID), ("body", STMT)))
        _, t = parse_meta_expr("t.body", {"t": tup})
        assert t == STMT

    def test_missing_tuple_field_rejected(self):
        tup = TupleType((("name", ID),))
        with pytest.raises(MacroTypeError) as exc:
            parse_meta_expr("t.oops", {"t": tup})
        assert "name" in str(exc.value)


class TestBuiltins:
    def test_gensym(self):
        _, t = parse_meta_expr("gensym()")
        assert t == ID

    def test_gensym_with_prefix(self):
        _, t = parse_meta_expr('gensym("tmp")')
        assert t == ID

    def test_concat_ids(self):
        _, t = parse_meta_expr("concat_ids(a, b)", {"a": ID, "b": ID})
        assert t == ID

    def test_concat_ids_arity(self):
        with pytest.raises(MacroTypeError):
            parse_meta_expr("concat_ids(a)", {"a": ID})

    def test_length(self):
        _, t = parse_meta_expr("length(xs)", {"xs": list_of(STMT)})
        assert t == INT

    def test_length_needs_list(self):
        with pytest.raises(MacroTypeError):
            parse_meta_expr("length(s)", {"s": STMT})

    def test_pstring(self):
        _, t = parse_meta_expr("pstring(x)", {"x": ID})
        assert t == STRING

    def test_symbolconc_mixed(self):
        _, t = parse_meta_expr('symbolconc("print_", name)', {"name": ID})
        assert t == ID

    def test_list_builds_list(self):
        _, t = parse_meta_expr("list(a, b)", {"a": ID, "b": ID})
        assert t == list_of(ID)

    def test_list_flattens(self):
        _, t = parse_meta_expr("list(a, xs)", {"a": ID, "xs": list_of(ID)})
        assert t == list_of(ID)

    def test_list_disagreement_rejected(self):
        with pytest.raises(MacroTypeError):
            parse_meta_expr("list(a, s)", {"a": ID, "s": STMT})

    def test_cons(self):
        _, t = parse_meta_expr("cons(a, xs)", {"a": ID, "xs": list_of(ID)})
        assert t == list_of(ID)

    def test_map_with_function(self):
        fn = FuncType((ID,), STMT)
        _, t = parse_meta_expr("map(f, xs)", {"f": fn, "xs": list_of(ID)})
        assert t == list_of(STMT)

    def test_map_element_mismatch(self):
        fn = FuncType((STMT,), STMT)
        with pytest.raises(MacroTypeError):
            parse_meta_expr("map(f, xs)", {"f": fn, "xs": list_of(ID)})

    def test_simple_expression(self):
        _, t = parse_meta_expr("simple_expression(e)", {"e": EXP})
        assert t == INT

    def test_unknown_function_rejected(self):
        with pytest.raises(MacroTypeError):
            parse_meta_expr("frobnicate(1)")

    def test_user_binding_shadows_builtin(self):
        _, t = parse_meta_expr(
            "length(xs)", {"length": FuncType((list_of(ID),), ID),
                           "xs": list_of(ID)}
        )
        assert t == ID


class TestAnonFunctions:
    def test_anon_function_type(self):
        _, t = parse_meta_expr("(@id x; `{case $x: break;})")
        assert isinstance(t, FuncType)
        assert t.params == (ID,)
        assert t.result == STMT

    def test_anon_function_in_map(self):
        _, t = parse_meta_expr(
            "map((@id x; `($x + 1)), xs)", {"xs": list_of(ID)}
        )
        assert t == list_of(EXP)

    def test_anon_function_param_scoping(self):
        # x is bound only inside the anonymous function.
        with pytest.raises(MacroTypeError):
            parse_meta_expr("map((@id x; `($x)), xs) == x",
                            {"xs": list_of(ID)})


class TestBackquoteTyping:
    def test_expression_template(self):
        _, t = parse_meta_expr("`(1 + 2)")
        assert t == EXP

    def test_statement_template(self):
        _, t = parse_meta_expr("`{return;}")
        assert t == STMT

    def test_declaration_template(self):
        _, t = parse_meta_expr("`[int x;]")
        assert t == prim("decl")

    def test_placeholder_type_propagates(self):
        _, t = parse_meta_expr("`($x + 1)", {"x": ID})
        assert t == EXP

    def test_ill_typed_placeholder_rejected_at_parse(self):
        # A stmt placeholder cannot stand inside an expression template.
        with pytest.raises(Exception):
            parse_meta_expr("`($s + 1)", {"s": STMT})
