"""Tests for converting C declaration syntax to meta types."""

import pytest

from repro.asttypes.convert import (
    bindings_from_declaration,
    is_meta_declaration,
)
from repro.asttypes.types import (
    ID,
    INT,
    STMT,
    STRING,
    FuncType,
    ListType,
    TupleType,
)
from repro.errors import MacroTypeError
from repro.parser.core import Parser


def parse_meta_decl(source: str):
    parser = Parser(source)
    with parser._meta(True):
        return parser.parse_declaration()


def bindings(source: str):
    return bindings_from_declaration(parse_meta_decl(source))


class TestAstBindings:
    def test_scalar_ast(self):
        assert bindings("@id x;") == [("x", ID)]

    def test_list_via_array_syntax(self):
        assert bindings("@id xs[];") == [("xs", ListType(ID))]

    def test_multiple_declarators(self):
        out = bindings("@stmt a, b[];")
        assert out == [("a", STMT), ("b", ListType(STMT))]

    def test_tuple_via_struct_syntax(self):
        out = bindings("struct {@id name; @stmt body;} t;")
        assert out == [("t", TupleType((("name", ID), ("body", STMT))))]

    def test_pointer_to_ast_rejected(self):
        with pytest.raises(MacroTypeError) as exc:
            bindings("@id *p;")
        assert "pointer" in str(exc.value).lower()

    def test_nested_list(self):
        out = bindings("@id xss[][];")
        assert out == [("xss", ListType(ListType(ID)))]


class TestCBindings:
    def test_int(self):
        assert bindings("int i;") == [("i", INT)]

    def test_char_array_is_string(self):
        assert bindings("char s[100];") == [("s", STRING)]

    def test_char_pointer_is_string(self):
        assert bindings("char *s;") == [("s", STRING)]

    def test_function_type(self):
        out = bindings("@stmt f(@id x);")
        name, ftype = out[0]
        assert name == "f"
        assert ftype == FuncType((ID,), STMT)


class TestMetaDetection:
    def test_ast_specs_make_meta(self):
        d = parse_meta_decl("@id x;")
        assert is_meta_declaration(d)

    def test_plain_c_is_not_meta(self):
        d = parse_meta_decl("int x;")
        assert not is_meta_declaration(d)

    def test_nested_ast_spec_detected(self):
        d = parse_meta_decl("struct {@id name;} t;")
        assert is_meta_declaration(d)
