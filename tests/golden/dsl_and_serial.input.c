
state_machine door {
    state closed { on open_cmd go opening }
    state opening { on opened go open_wide, on obstruction go closed }
    state open_wide { }
};

serializable packet { int seq; int crc; };
