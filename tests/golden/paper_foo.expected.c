enum fruit {apple, banana, kiwi};

void print_fruit(int arg)
{
    switch (arg)
    {
        case apple:
            printf("%s", "apple");
        case banana:
            printf("%s", "banana");
        case kiwi:
            printf("%s", "kiwi");
    }
}

int read_fruit(void)
{
    char s[100];
    getline(s, 100);
    if (!strcmp(s, "apple"))
        return apple;
    if (!strcmp(s, "banana"))
        return banana;
    if (!strcmp(s, "kiwi"))
        return kiwi;
    return 0;
}

int foo(a, b, c)
int a, b;
int *c;
{
    int z;
    z = a + b;
    {
        int *old_exception_ptr = exception_ptr;
        int jump_buffer[2];
        int result;
        result = setjmp(jump_buffer);
        if (result == 0)
        {
            exception_ptr = jump_buffer;
            {
                *c = freq(z, a);
            }
        }
        else
        {
            exception_ptr = old_exception_ptr;
            if (result == division_by_zero)
            {
                printf("%s", "You lose, division by zero.");
            }
            else
                if (exception_ptr == 0)
                    error_handler("No handler for thrown value");
                else
                    longjmp(exception_ptr, result);
        }
    }
    {
        int *old_exception_ptr = exception_ptr;
        int jump_buffer[2];
        int result = setjmp(jump_buffer);
        if (result == 0)
        {
            exception_ptr = jump_buffer;
            {
                start_faucet_running();
            }
        }
        else
        {
            exception_ptr = old_exception_ptr;
        }
        {
            stop_faucet();
        }
        if (result != 0)
            if (exception_ptr == 0)
                error_handler("No handler for thrown value");
            else
                longjmp(exception_ptr, result);
    }
    return z;
}

