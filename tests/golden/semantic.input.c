
long printlength;

void demo(int count, float ratio)
{
    sdynamic_bind {printlength = 10} {print_tree(root);}
    show(count);
    show(ratio);
}
