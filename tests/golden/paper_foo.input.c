
myenum fruit {apple, banana, kiwi};

int foo(a, b, c)
int a, b;
int *c;
{
    int z;
    z = a + b;
    catch division_by_zero
        {printf("%s", "You lose, division by zero.");}
        {*c = freq(z, a);}
    unwind_protect {start_faucet_running();}
        {stop_faucet();}
    return(z);
}
