enum door_states {closed, opening, open_wide};

int door_step(int state, int event)
{
    switch (state)
    {
        case closed:
            {
                if (event == open_cmd)
                    return opening;
                break;
            }
        case opening:
            {
                if (event == opened)
                    return open_wide;
                if (event == obstruction)
                    return closed;
                break;
            }
        case open_wide:
            {
                break;
            }
    }
    return state;
}

struct packet {int seq; int crc;};

void print_packet(struct packet *p)
{
    printf("%s {", "packet");
    print_field("seq", p->seq);
    print_field("crc", p->crc);
    printf("%s", "}");
}

int pack_packet(struct packet *p, char *buf)
{
    int offset;
    offset = 0;
    offset = offset + pack_value(buf + offset, p->seq);
    offset = offset + pack_value(buf + offset, p->crc);
    return offset;
}

