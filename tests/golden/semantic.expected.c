long printlength;

void demo(int count, float ratio)
{
    {
        long __g_1 = printlength;
        printlength = 10;
        {
            print_tree(root);
        }
        printlength = __g_1;
    }
    printf("%s = %d", "count", count);
    printf("%s = %f", "ratio", ratio);
}

