#!/usr/bin/env python
"""A tour of the Figure 1 macro-system taxonomy.

Runs the same abstraction task at all three macro *bases* — character
(GPM), token (CPP), and syntax (MS2) — showing what each can and
cannot do:

* character macros can splice token halves (and produce garbage);
* token macros suffer precedence interference;
* syntax macros encapsulate and are statically checked.

Run with::

    python examples/taxonomy_tour.py
"""

from repro import MacroProcessor, MacroTypeError
from repro.baseline import CharMacroProcessor, TokenMacroProcessor
from repro.baseline.tokmacro import render_tokens

#: `repro trace` hooks: the syntax-level MULT demo, traceable as
#: ``python -m repro trace examples/taxonomy_tour.py``.
TRACE_SOURCES = [
    "syntax exp MULT {| ( $$exp::a , $$exp::b ) |}"
    "{ return(`($a * $b)); }"
]

TRACE_PROGRAM = "void f(void) { r = MULT(x + y, m + n); }"


def character_level() -> None:
    print("=" * 64)
    print("CHARACTER level (GPM, 1965): streams of characters")
    print("=" * 64)
    cp = CharMacroProcessor()
    out = cp.process("$DEF,glue,<~1~2>;int $glue,count,ers; = 0;")
    print("  $DEF,glue,<~1~2>;  int $glue,count,ers; = 0;")
    print(f"  => {out!r}")
    print("  (welded two halves into one identifier — no other level")
    print("   can do this, and nothing stops it producing garbage)")
    out = cp.process("$DEF,bad,<while (>;$bad; $bad;")
    print(f"  unbalanced output accepted: {out!r}")
    print()


def token_level() -> None:
    print("=" * 64)
    print("TOKEN level (CPP): streams of tokens")
    print("=" * 64)
    tp = TokenMacroProcessor()
    tp.define("MULT(A, B) A * B")
    out = render_tokens(tp.expand_text("MULT(x + y, m + n)"))
    print("  #define MULT(A, B) A * B")
    print("  MULT(x + y, m + n)")
    print(f"  => {out}")
    print("  parse: x + (y * m) + n  — NOT the intended product!")
    print()


def syntax_level() -> None:
    print("=" * 64)
    print("SYNTAX level (MS2, this paper): abstract syntax trees")
    print("=" * 64)
    mp = MacroProcessor()
    mp.load(
        "syntax exp MULT {| ( $$exp::a , $$exp::b ) |}"
        "{ return(`($a * $b)); }"
    )
    out = mp.expand_to_c("void f(void) { r = MULT(x + y, m + n); }")
    print("  syntax exp MULT {| ( $$exp::a , $$exp::b ) |}")
    print("  { return(`($a * $b)); }")
    print("  r = MULT(x + y, m + n);")
    for line in out.splitlines():
        print("  => " + line)
    print("  substitution happened on trees: encapsulation for free.")
    print()
    print("  And macro bugs are caught at DEFINITION time:")
    try:
        mp.load(
            "syntax stmt bad {| $$stmt::s |} { return(`(1 + $s)); }"
        )
    except Exception as exc:
        print(f"  {type(exc).__name__}: {exc}")


def main() -> None:
    character_level()
    token_level()
    syntax_level()


if __name__ == "__main__":
    main()
