#!/usr/bin/env python
"""Generating readers and writers for enumerated types (paper §4).

``myenum`` demonstrates the full programmable power of MS2 in one
macro: it returns a *list* of declarations, maps anonymous functions
over the enumerator list, computes function names with ``symbolconc``
and turns identifiers into string literals with ``pstring``.

Run with::

    python examples/enum_io.py
"""

from repro import MacroProcessor
from repro.packages import enumio

PROGRAM = """
myenum fruit {apple, banana, kiwi};
myenum compass {north, east, south, west};
"""


def main() -> None:
    mp = MacroProcessor()
    enumio.register(mp)

    print("--- the myenum macro " + "-" * 47)
    print(enumio.SOURCE.strip())
    print()
    print("--- user program " + "-" * 51)
    print(PROGRAM)
    print("--- expanded C " + "-" * 53)
    print(mp.expand_to_c(PROGRAM))


if __name__ == "__main__":
    main()
