#!/usr/bin/env python
"""Exception handling for C via syntax macros (paper section 4).

Loads the ``throw`` / ``catch`` / ``unwind_protect`` package and
expands the paper's ``foo`` example, showing how three macros build a
complete termination-semantics exception system on setjmp/longjmp —
including the protected ``Painting`` macro whose template itself
invokes ``unwind_protect``.

Run with::

    python examples/exceptions_demo.py
"""

from repro import MacroProcessor
from repro.packages import exceptions, painting

PROGRAM = """
enum error_types {division_by_zero, file_closed};

int foo(a, b, c)
int a, b;
int *c;
{
    int z;
    z = a + b;
    catch division_by_zero
        {printf("%s", "You lose, division by zero.");}
        {*c = freq(z, a);}
    unwind_protect {start_faucet_running();}
        {stop_faucet();}
    return(z);
}

void redraw(void)
{
    Painting {
        draw_everything();
        throw file_closed;
    }
}
"""


def main() -> None:
    mp = MacroProcessor()
    exceptions.register(mp)
    painting.register(mp, protected=True)

    print("--- macro package (excerpt) " + "-" * 40)
    print(exceptions.SOURCE.strip()[:400] + "\n    ...")
    print()
    print("--- user program " + "-" * 48)
    print(PROGRAM)
    print("--- expanded C " + "-" * 50)
    print("/* link against: */")
    print(exceptions.RUNTIME_SUPPORT.strip())
    print()
    print(mp.expand_to_c(PROGRAM))
    print(f"({mp.expansion_count} macro expansions, "
          f"{len(mp.table)} macros loaded)")


if __name__ == "__main__":
    main()
