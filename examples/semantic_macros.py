#!/usr/bin/env python
"""Semantic macros — the paper's section 5 future work, implemented.

Two promised powers:

1. types without annotations: ``sdynamic_bind`` needs no type
   parameter (compare §4's ``dynamic_bind {int printlength = 10}``);
2. compile-time dispatch on types: ``show(x)`` picks its printf
   format from ``x``'s declared type, with no runtime test surviving.

Run with::

    python examples/semantic_macros.py
"""

from repro import MacroProcessor
from repro.packages import semantic

PROGRAM = """
long printlength;

void demo(int count, float ratio)
{
    char flag;
    sdynamic_bind {printlength = 10}
        {print_class_structure(gym_class);}
    show(count);
    show(ratio);
    show(flag);
    show(printlength);
    sswap(count, count);
}
"""


def main() -> None:
    mp = MacroProcessor()
    semantic.register(mp)
    print("--- the semantic macro package " + "-" * 36)
    print(semantic.SOURCE.strip())
    print()
    print("--- user program (note: no type annotations) " + "-" * 22)
    print(PROGRAM)
    print("--- expanded C " + "-" * 52)
    print(mp.expand_to_c(PROGRAM))


if __name__ == "__main__":
    main()
