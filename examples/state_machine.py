#!/usr/bin/env python
"""A special-purpose preprocessor built on MS2 (paper section 4).

"Many software projects ... extend a language to incorporate domain
specific data types and statements.  The first task of these projects
is to write a preprocessor, a task that would be trivial if a suitable
macro facility were available."

Here the domain is state machines: declarative transitions in, a plain
C enum + transition function out.

Run with::

    python examples/state_machine.py
"""

from repro import MacroProcessor
from repro.packages import statemachine

PROGRAM = """
state_machine traffic_light {
    state red { on timer go green }
    state green { on timer go yellow, on emergency go red }
    state yellow { on timer go red, on emergency go red }
};

int main(void)
{
    int s;
    s = red;
    s = traffic_light_step(s, timer);
    return s;
}
"""


def main() -> None:
    mp = MacroProcessor()
    statemachine.register(mp)
    print("--- the DSL program " + "-" * 47)
    print(PROGRAM)
    print("--- expanded C " + "-" * 52)
    print(mp.expand_to_c(PROGRAM))


if __name__ == "__main__":
    main()
