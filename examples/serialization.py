#!/usr/bin/env python
"""Routine code from data declarations (paper section 4's
"persistence code, RPC code, dialog boxes ... created when data is
declared").

``serializable`` expands a struct declaration into the struct plus
generated print and pack functions — one statement per field, derived
with the ``decl->name`` component accessor.

Run with::

    python examples/serialization.py
"""

from repro import MacroProcessor
from repro.packages import structio

PROGRAM = """
serializable point { int x; int y; };

serializable packet {
    long sequence;
    int checksum;
    char payload[256];
};
"""


def main() -> None:
    mp = MacroProcessor()
    structio.register(mp)

    print("--- the serializable macro " + "-" * 40)
    print(structio.SOURCE.strip())
    print()
    print("--- user program " + "-" * 50)
    print(PROGRAM)
    print("--- expanded C " + "-" * 52)
    print(mp.expand_to_c(PROGRAM))


if __name__ == "__main__":
    main()
