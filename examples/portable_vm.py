#!/usr/bin/env python
"""The macro-based portability VM (paper section 4).

One source program, two operating-system targets — selected at
*expansion* time by ``metadcl`` state, with zero runtime dispatch in
the output.

Run with::

    python examples/portable_vm.py
"""

from repro import MacroProcessor
from repro.packages import portvm

PROGRAM = """
void worker(int h)
{
    vm_open(h, path);
    vm_sleep(50);
    vm_yield();
    vm_close(h);
}
"""

#: `repro trace` needs a target selected before the vm_ macros fire.
TRACE_PROGRAM = "vm_target unix;\n" + PROGRAM


def main() -> None:
    for target in ("unix", "windows"):
        mp = MacroProcessor()
        portvm.register(mp)
        print("=" * 60)
        print(f"vm_target {target};")
        print("=" * 60)
        print(mp.expand_to_c(f"vm_target {target};\n{PROGRAM}"))


if __name__ == "__main__":
    main()
