/* The paper's introductory Painting macro, self-contained: the
 * definition and its use share one translation unit. */

syntax stmt Painting {| $$stmt::body |}
{
  return(`{BeginPaint(hDC, &ps);
           $body;
           EndPaint(hDC, &ps);});
}

void redraw_window(void)
{
    Painting {
        draw_background();
        draw_text(hDC, caption);
    }
}
