/* Resource bracketing: the allocate/use/deallocate idiom as one
 * statement form. */

syntax stmt with_lock {| ( $$exp::mutex ) $$stmt::body |}
{
  return(`{acquire($mutex);
           $body;
           release($mutex);});
}

void update_counter(void)
{
    with_lock (&counter_mutex) {
        counter = counter + 1;
    }
}
