/* No macros at all: the driver must pass plain C through unchanged
 * (modulo layout). */

int clamp(int value, int lo, int hi)
{
    if (value < lo) return lo;
    if (value > hi) return hi;
    return value;
}
