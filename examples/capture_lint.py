#!/usr/bin/env python
"""Variable capture: detect it, then eliminate it (paper section 5).

A macro whose template declares ``saved`` silently captures a user's
own ``saved``.  This example shows the same program expanded three
ways:

1. unhygienically, with :func:`repro.analysis.detect_captures`
   reporting the bug;
2. with the macro rewritten to use ``gensym`` (the paper's §4
   discipline);
3. with automatic hygiene (`Ms2Options(hygienic=True)` — the §5
   future-work extension, implemented here).

Run with::

    python examples/capture_lint.py
"""

from repro import MacroProcessor, Ms2Options
from repro.analysis import detect_captures

CAPTURING_MACRO = """
syntax stmt save_level {| $$stmt::body |}
{
  return(`{{int saved = level;
            $body;
            level = saved;}});
}
"""

GENSYM_MACRO = """
syntax stmt save_level {| $$stmt::body |}
{
  @id slot = gensym();
  return(`{{int $slot = level;
            $body;
            level = $slot;}});
}
"""

#: The user innocently has their own 'saved' variable.
PROGRAM = """
void f(int saved)
{
    save_level { saved = saved + level; }
}
"""

#: `repro trace` loads just the gensym variant (loading both variants
#: would redefine ``save_level``).
TRACE_SOURCES = [GENSYM_MACRO]


def show(title: str, macro_src: str, hygienic: bool) -> None:
    print("=" * 64)
    print(title)
    print("=" * 64)
    mp = MacroProcessor(options=Ms2Options(hygienic=hygienic))
    mp.load(macro_src)
    unit = mp.expand_to_ast(PROGRAM)
    print(mp.expand_to_c(PROGRAM))
    captures = detect_captures(unit)
    if captures:
        print("!! capture diagnostics:")
        for capture in captures:
            print(f"   {capture}")
    else:
        print("no captures detected.")
    print()


def main() -> None:
    show("1. naive template (captures the user's 'saved')",
         CAPTURING_MACRO, hygienic=False)
    show("2. gensym discipline (the paper's §4 style)",
         GENSYM_MACRO, hygienic=False)
    show("3. automatic hygiene (the §5 extension)",
         CAPTURING_MACRO, hygienic=True)


if __name__ == "__main__":
    main()
