#!/usr/bin/env python
"""Quickstart: define and use a syntax macro in ten lines.

The ``Painting`` macro from the paper's introduction: a new statement
type that brackets its body with resource allocation/deallocation
calls.  Run with::

    python examples/quickstart.py
"""

from repro import MacroProcessor

PROGRAM = """
syntax stmt Painting {| $$stmt::body |}
{
  return(`{BeginPaint(hDC, &ps);
           $body;
           EndPaint(hDC, &ps);});
}

void redraw_window(void)
{
    Painting {
        draw_background();
        draw_text(hDC, caption);
    }
}
"""


def main() -> None:
    mp = MacroProcessor()
    print("--- input (C + macro definition) " + "-" * 30)
    print(PROGRAM)
    print("--- expanded C " + "-" * 48)
    print(mp.expand_to_c(PROGRAM))
    print(f"({mp.expansion_count} macro expansion(s))")


if __name__ == "__main__":
    main()
