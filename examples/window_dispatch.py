#!/usr/bin/env python
"""Non-local code rearrangement (paper section 4).

Handlers for window messages are written *next to the code they
concern*, scattered through the program; ``emit_window_proc`` later
collects everything into one dispatch function.  The accumulating
macros expand to nothing — their effect is entirely on ``metadcl``
meta-state.

Run with::

    python examples/window_dispatch.py
"""

from repro import MacroProcessor
from repro.packages import dispatch

PROGRAM = """
new_window_proc wproc default DefWindowProc;

int idTimer;

window_proc_dispatch(wproc, WM_DESTROY)
  {KillTimer(hWnd, idTimer);
   PostQuitMessage(0);}

void unrelated_code_between_handlers(void)
{
    do_other_work();
}

window_proc_dispatch(wproc, WM_CREATE)
  {idTimer = SetTimer(hWnd, 77, 5000, 0);}

window_proc_dispatch(wproc, WM_PAINT)
  {repaint_everything(hWnd);}

emit_window_proc wproc;
"""


def main() -> None:
    mp = MacroProcessor()
    dispatch.register(mp)

    print("--- user program (handlers written where they belong) " + "-" * 9)
    print(PROGRAM)
    print("--- expanded C (one dispatch function emitted) " + "-" * 17)
    print(mp.expand_to_c(PROGRAM))


if __name__ == "__main__":
    main()
