"""Ablation: where does macro-definition time go?

A ``syntax`` definition is (a) pattern-parsed, (b) lookahead-
validated, (c) body-parsed with placeholder type analysis, and
(d) body-checked.  These benches separate the pieces and measure how
definition cost scales with body size — quantifying the price of the
paper's definition-time guarantee (work that CPP, with no guarantee,
never does).
"""

import pytest

from repro import MacroProcessor
from repro.macros.lookahead import validate_pattern
from repro.macros.pattern import parse_pattern_text


def macro_with_body_statements(n: int) -> str:
    body_stmts = " ".join(f"stage{i}();" for i in range(n))
    return (
        "syntax stmt staged {| $$stmt::body |}"
        "{ return(`{{" + body_stmts + " $body;}}); }"
    )


@pytest.mark.benchmark(group="definition-scaling")
class TestDefinitionScaling:
    @pytest.mark.parametrize("n", [1, 10, 50, 200])
    def test_define_macro_with_n_template_statements(self, benchmark, n):
        src = macro_with_body_statements(n)

        def define():
            mp = MacroProcessor()
            mp.load(src)
            return mp

        assert "staged" in define().table.names()
        benchmark(define)


@pytest.mark.benchmark(group="lookahead-validation")
class TestLookaheadValidationCost:
    """The one-token-lookahead check runs once per definition."""

    PATTERNS = {
        "trivial": "$$stmt::body",
        "moderate": "$$id::name { $$+/, id::ids } ;",
        "complex": (
            "$$id::v = $$exp::lo to $$exp::hi $$? step exp::s"
            " { $$*stmt::body }"
        ),
        "tuple-heavy": (
            "$$+/, ( $$id::k = $$exp::v )::pairs ;"
        ),
    }

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_validate(self, benchmark, name):
        pattern = parse_pattern_text(self.PATTERNS[name])
        benchmark(lambda: validate_pattern(pattern, "m"))

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_pattern_parse(self, benchmark, name):
        text = self.PATTERNS[name]
        benchmark(lambda: parse_pattern_text(text))


@pytest.mark.benchmark(group="placeholder-density")
class TestPlaceholderDensity:
    """Template parse cost vs number of placeholders in the template."""

    @pytest.mark.parametrize("n", [0, 2, 8, 16])
    def test_parse_template_with_n_placeholders(self, benchmark, n):
        from repro.asttypes.types import prim
        from repro.figures import parse_template_fragment

        bindings = {f"p{i}": prim("exp") for i in range(max(n, 1))}
        if n == 0:
            stmts_text = " ".join(f"f{i}(x);" for i in range(8))
        else:
            stmts_text = " ".join(f"f{i}($p{i % n});" for i in range(8))
        source = "{" + stmts_text + "}"
        benchmark(
            lambda: parse_template_fragment("stmt", source, bindings)
        )
