"""Section 3's parse-time costs, isolated.

The paper's parser must (a) consult the macro keyword table at every
declaration/statement/expression position and (b) run AST type
analysis while parsing templates.  These benches isolate each cost:

* plain C parsing with no macro host (the do-nothing baseline);
* the same source parsed with a host and a populated macro table;
* template parsing (placeholder type analysis on) vs parsing the same
  text as plain C (identifiers instead of placeholders).
"""

import pytest

from repro import MacroProcessor
from repro.asttypes.types import list_of, prim
from repro.figures import parse_template_fragment
from repro.parser.core import Parser

SOURCE = """
int helper(int a, int b)
{
    int i;
    int total;
    total = 0;
    for (i = 0; i < a; i++) total = total + b * i;
    if (total > 1000) return 1000;
    return total;
}
"""

TEMPLATE_TEXT = "{int x; $ph1 $ph2 x = $e + 1; return(x);}"
PLAIN_TEXT = "{int x; ph1(); ph2(); x = e + 1; return(x);}"


@pytest.mark.benchmark(group="parse-costs")
class TestParseCosts:
    def test_plain_c_no_host(self, benchmark):
        benchmark(lambda: Parser(SOURCE).parse_program())

    def test_plain_c_with_macro_table(self, benchmark):
        mp = MacroProcessor()
        from repro.packages import load_standard

        load_standard(mp)

        def parse():
            parser = mp.make_parser(SOURCE)
            return parser.parse_program()

        benchmark(parse)

    def test_template_with_placeholders(self, benchmark):
        bindings = {
            "ph1": prim("stmt"),
            "ph2": prim("stmt"),
            "e": prim("exp"),
        }
        benchmark(
            lambda: parse_template_fragment("stmt", TEMPLATE_TEXT, bindings)
        )

    def test_same_shape_plain_c(self, benchmark):
        benchmark(
            lambda: Parser(PLAIN_TEXT).parse_statement()
        )


@pytest.mark.benchmark(group="tokenizer")
class TestTokenizerCost:
    def test_tokenize_only(self, benchmark):
        from repro.lexer.scanner import tokenize

        benchmark(lambda: tokenize(SOURCE))
