"""Remote-cache replay: cold vs local-warm vs remote-warm builds.

The distributed cache's promise is that one machine's cold build is
every other machine's warm build.  This benchmark measures the three
configurations on the driver-scaling corpus (50 generated files, 8
under ``BENCH_SMOKE``) against an in-process authority daemon:

- **cold** — empty local dir, empty authority: every file pays the
  full pipeline and publishes its snapshot to the daemon;
- **local warm** — same local dir again: every file replays from the
  local tier without touching the wire (the ceiling);
- **remote warm** — a *fresh, empty* local dir, same authority: every
  file replays over ``cache_get`` and is promoted locally (the
  acceptance bar is >= 5x over cold at full size).

Run standalone to append a point to ``BENCH_expansion.json``::

    PYTHONPATH=src python benchmarks/test_remote_cache.py
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from pathlib import Path

from repro.driver import BuildSession, CacheConfig

try:  # pytest imports this file as benchmarks.test_remote_cache
    from benchmarks.test_driver_scaling import (
        CORPUS_FILES, SMOKE_FILES, driver_corpus,
    )
except ImportError:  # standalone: python benchmarks/test_remote_cache.py
    from test_driver_scaling import (
        CORPUS_FILES, SMOKE_FILES, driver_corpus,
    )


class _AuthorityDaemon:
    """An in-process daemon whose ``cache_dir`` is the fleet cache."""

    def __init__(self, socket_path: Path, cache_dir: Path) -> None:
        self.socket_path = socket_path
        self.cache_dir = cache_dir
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(30), "authority failed to start"
        return self

    def _run(self) -> None:
        from repro.server import Ms2Server

        async def main() -> None:
            self.server = Ms2Server(
                socket_path=self.socket_path, cache_dir=self.cache_dir
            )
            await self.server.start()
            self.loop = asyncio.get_running_loop()
            self._ready.set()
            await self.server.serve_until_stopped()

        asyncio.run(main())

    def __exit__(self, *exc_info) -> None:
        self.loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(30)


def _timed_build(
    sources, config: CacheConfig | None
) -> tuple[float, "BuildReport", list[str]]:
    session = BuildSession(
        package_names=("loops", "exceptions"), cache=config
    )
    start = time.perf_counter()
    try:
        report = session.build_sources(sources)
    finally:
        session.close()
    elapsed = time.perf_counter() - start
    assert report.ok
    return elapsed, report, [r.output for r in report.results]


def measure_remote_cache(tmp_root: Path, smoke: bool = False) -> dict:
    """Cold / local-warm / remote-warm wall times on the corpus."""
    count = SMOKE_FILES if smoke else CORPUS_FILES
    sources = driver_corpus(count)

    with _AuthorityDaemon(
        tmp_root / "authority.sock", tmp_root / "authority-cache"
    ) as daemon:
        remote = f"unix://{daemon.socket_path}"

        def config(local: str) -> CacheConfig:
            return CacheConfig(
                local_dir=str(tmp_root / local),
                remote=remote,
                write_behind=0,  # synchronous publish: deterministic
            )

        cold_s, cold_report, cold_outputs = _timed_build(
            sources, config("machine-a")
        )
        assert cold_report.files_expanded == count

        local_s, local_report, local_outputs = _timed_build(
            sources, config("machine-a")
        )
        assert local_report.files_from_cache == count
        assert local_outputs == cold_outputs, "local warm drifted"

        remote_s, remote_report, remote_outputs = _timed_build(
            sources, config("machine-b")  # fresh: wire-only warmth
        )
        assert remote_report.files_from_cache == count
        assert remote_outputs == cold_outputs, "remote warm drifted"
        remote_tier = remote_report.cache["tiers"]["remote"]
        assert remote_tier["hits"] == count, remote_tier

    return {
        "files": count,
        "cold_ms": round(cold_s * 1000, 2),
        "local_warm_ms": round(local_s * 1000, 2),
        "remote_warm_ms": round(remote_s * 1000, 2),
        "local_warm_speedup": round(cold_s / local_s, 2),
        "remote_warm_speedup": round(cold_s / remote_s, 2),
        "remote_load_ms": round(remote_tier["load_ms"], 2),
    }


def emit_trajectory(path: Path, tmp_root: Path, smoke: bool = False) -> dict:
    """Append a remote-cache point to the shared trajectory file."""
    point = {
        "smoke": smoke,
        "remote_cache": measure_remote_cache(tmp_root, smoke=smoke),
    }
    trajectory = []
    if path.exists():
        trajectory = json.loads(path.read_text()).get("trajectory", [])
    trajectory.append(point)
    path.write_text(
        json.dumps({"trajectory": trajectory}, indent=2) + "\n"
    )
    return point


# ---------------------------------------------------------------------------
# pytest coverage (kept timing-tolerant; the JSON point is the record)
# ---------------------------------------------------------------------------


def test_remote_warm_beats_cold(tmp_path: Path) -> None:
    point = measure_remote_cache(tmp_path, smoke=True)
    # The full-size acceptance bar is 5x; the smoke assertion stays
    # tolerant of loaded CI hosts.  Byte-parity and wire-served hit
    # counts are asserted inside measure_remote_cache itself.
    assert point["remote_warm_speedup"] > 1.0, point
    assert point["files"] == SMOKE_FILES


if __name__ == "__main__":
    import sys
    import tempfile

    smoke = bool(os.environ.get("BENCH_SMOKE"))
    out = Path(
        os.environ.get("BENCH_EXPANSION_JSON", "BENCH_expansion.json")
    )
    with tempfile.TemporaryDirectory() as tmp:
        point = emit_trajectory(out, Path(tmp), smoke=smoke)
    json.dump(point, sys.stdout, indent=2)
    print()
