"""Figure 1: the two-dimensional categorization of macro systems.

Regenerates the taxonomy table by *measuring* each system's
properties on the same tasks, and benchmarks the expansion cost at
each macro basis (character / token / syntax).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro import MacroProcessor
from repro.baseline import CharMacroProcessor, TokenMacroProcessor
from repro.baseline.tokmacro import render_tokens
from repro.errors import Ms2Error
from tests.conftest import parse_expr

MULT_SYNTAX = (
    "syntax exp MULT {| ( $$exp::a , $$exp::b ) |}"
    "{ return(`($a * $b)); }"
)


def _encapsulation_safe_char() -> bool:
    cp = CharMacroProcessor()
    out = cp.process("$DEF,MULT,<~1 * ~2>;$MULT,x + y,m + n;")
    return parse_expr(out).op == "*"


def _encapsulation_safe_token() -> bool:
    tp = TokenMacroProcessor()
    tp.define("MULT(A, B) A * B")
    out = render_tokens(tp.expand_text("MULT(x + y, m + n)"))
    return parse_expr(out).op == "*"


def _encapsulation_safe_syntax() -> bool:
    mp = MacroProcessor()
    mp.load(MULT_SYNTAX)
    unit = mp.expand_to_ast("void f(void) { r = MULT(x + y, m + n); }")
    return unit.items[0].body.stmts[0].expr.value.op == "*"


def _statically_checked_syntax() -> bool:
    mp = MacroProcessor()
    try:
        mp.load("syntax stmt bad {| $$stmt::s |} { return(`(1 + $s)); }")
    except Ms2Error:
        return True
    return False


def _programmable_char() -> bool:
    # GPM is Turing-capable: macros can define macros and recurse.
    cp = CharMacroProcessor()
    out = cp.process("$DEF,make,<$DEF,~1,<v-~1>;>;$make,m;$m;")
    return out == "v-m"


def _programmable_syntax() -> bool:
    # Conditionals, loops, state: compute 2^5 at expansion time.
    mp = MacroProcessor()
    mp.load(
        "syntax exp pow2 {| ( $$num::n ) |}"
        "{ int i; int r; r = 1;"
        "  for (i = 0; i < num_value(n); i++) r = r * 2;"
        "  return(make_num(r)); }"
    )
    out = mp.expand_to_c("int x = pow2(5);")
    return "32" in out


class TestFigure1Table:
    def test_taxonomy_properties(self):
        rows = [
            (
                "Character (GPM-style)",
                "character stream",
                "yes" if _programmable_char() else "no",
                "yes" if _encapsulation_safe_char() else "no",
                "no",
            ),
            (
                "Token (CPP-style)",
                "token stream",
                "no (subst+rescan)",
                "yes" if _encapsulation_safe_token() else "no",
                "no",
            ),
            (
                "Syntax (MS2, this paper)",
                "abstract syntax tree",
                "yes" if _programmable_syntax() else "no",
                "yes" if _encapsulation_safe_syntax() else "no",
                "yes" if _statically_checked_syntax() else "no",
            ),
        ]
        print_table(
            "Figure 1 — macro bases, measured",
            ["system", "operates on", "programmable",
             "encapsulation", "static checks"],
            rows,
        )
        # Paper's claims, verified: only the syntax system gets
        # encapsulation and static checking; both GPM and MS2 are
        # fully programmable; CPP is neither.
        assert rows[0][2].startswith("yes")
        assert rows[0][3] == "no"
        assert rows[1][3] == "no"
        assert rows[2][2] == "yes"
        assert rows[2][3] == "yes"
        assert rows[2][4] == "yes"


# ---------------------------------------------------------------------------
# Expansion cost at each basis (same task: MULT of two sums)
# ---------------------------------------------------------------------------


@pytest.mark.benchmark(group="fig1-expansion-cost")
class TestExpansionCost:
    def test_character_macro(self, benchmark):
        cp = CharMacroProcessor()
        cp.process("$DEF,MULT,<(~1) * (~2)>;")

        benchmark(lambda: cp.process("$MULT,x + y,m + n;"))

    def test_token_macro(self, benchmark):
        tp = TokenMacroProcessor()
        tp.define("MULT(A, B) ((A) * (B))")

        benchmark(lambda: tp.expand_text("MULT(x + y, m + n)"))

    def test_syntax_macro(self, benchmark):
        mp = MacroProcessor()
        mp.load(MULT_SYNTAX)
        src = "void f(void) { r = MULT(x + y, m + n); }"

        benchmark(lambda: mp.expand_to_c(src))
