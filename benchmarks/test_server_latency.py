"""Warm-daemon latency vs cold-CLI latency.

The point of ``repro serve`` is amortization: a cold ``repro expand``
pays interpreter boot, package imports and preamble loading on every
invocation, while a warm daemon pays them once and answers each
request with one socket round-trip to a pre-built worker.  This
benchmark measures both on the same corpus file:

- **cold CLI** — ``python -m repro expand <file>`` as a subprocess,
  end-to-end wall time (what a Makefile rule pays today);
- **warm server** — the same expansion through
  :class:`~repro.client.Ms2Client` against an in-process daemon,
  per-request wall time after one warm-up request.

The acceptance bar for the daemon is warm >= 5x faster than cold.

Run standalone to append a point to ``BENCH_expansion.json``::

    PYTHONPATH=src python benchmarks/test_server_latency.py
"""

from __future__ import annotations

import asyncio
import json
import os
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
WORKLOAD = REPO_ROOT / "examples" / "corpus" / "with_lock.c"

COLD_RUNS = 5
WARM_REQUESTS = 40
SMOKE_COLD_RUNS = 3
SMOKE_WARM_REQUESTS = 10


class _DaemonThread:
    """An in-process daemon on a Unix socket, for measuring request
    latency without subprocess noise on the warm side."""

    def __init__(self, socket_path: Path) -> None:
        self.socket_path = socket_path
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(30), "daemon failed to start"
        return self

    def _run(self) -> None:
        from repro.server import Ms2Server

        async def main() -> None:
            self.server = Ms2Server(socket_path=self.socket_path)
            await self.server.start()
            self.loop = asyncio.get_running_loop()
            self._ready.set()
            await self.server.serve_until_stopped()

        asyncio.run(main())

    def __exit__(self, *exc_info) -> None:
        self.loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(30)


def _cold_cli_ms(runs: int) -> list[float]:
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    samples = []
    for _ in range(runs):
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "expand", str(WORKLOAD)],
            env=env, cwd=REPO_ROOT, capture_output=True, check=True,
        )
        samples.append((time.perf_counter() - start) * 1000)
    assert proc.stdout, "cold CLI produced no output"
    return samples


def _warm_server_ms(
    tmp_root: Path, requests: int
) -> tuple[list[float], str, dict]:
    from repro.client import Ms2Client

    source = WORKLOAD.read_text()
    samples = []
    with _DaemonThread(tmp_root / "bench.sock") as daemon:
        with Ms2Client(daemon.socket_path) as client:
            # One warm-up: the first request may build its worker.
            output = client.expand(source, str(WORKLOAD)).output
            for _ in range(requests):
                start = time.perf_counter()
                result = client.expand(source, str(WORKLOAD))
                samples.append((time.perf_counter() - start) * 1000)
                assert result.output == output, "warm output drifted"
            stats = client.stats()
    return samples, output, stats


def measure_server(tmp_root: Path, smoke: bool = False) -> dict:
    """Cold-CLI vs warm-server wall times on the corpus workload."""
    cold_runs = SMOKE_COLD_RUNS if smoke else COLD_RUNS
    warm_requests = SMOKE_WARM_REQUESTS if smoke else WARM_REQUESTS

    cold = _cold_cli_ms(cold_runs)
    warm, warm_output, stats = _warm_server_ms(tmp_root, warm_requests)

    # Byte-parity with the cold CLI is part of the bar.
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    cli_output = subprocess.run(
        [sys.executable, "-m", "repro", "expand", str(WORKLOAD)],
        env=env, cwd=REPO_ROOT, capture_output=True, check=True,
    ).stdout.decode()
    assert cli_output == warm_output, "server output != CLI output"

    cold_ms = statistics.median(cold)
    warm_ms = statistics.median(warm)
    warm_sorted = sorted(warm)
    return {
        "workload": WORKLOAD.name,
        "cold_runs": cold_runs,
        "warm_requests": warm_requests,
        "cold_cli_ms": round(cold_ms, 2),
        "warm_server_ms": round(warm_ms, 3),
        "warm_p95_ms": round(
            warm_sorted[int(0.95 * (len(warm_sorted) - 1))], 3
        ),
        "speedup": round(cold_ms / warm_ms, 1),
        "warm_hits": stats["workers"]["warm_hits"],
        "server_mean_ms": stats["latency_ms"]["mean"],
    }


def emit_trajectory(path: Path, tmp_root: Path, smoke: bool = False) -> dict:
    """Append a server-latency point to the shared trajectory file."""
    point = {"smoke": smoke, "server": measure_server(tmp_root, smoke=smoke)}
    trajectory = []
    if path.exists():
        trajectory = json.loads(path.read_text()).get("trajectory", [])
    trajectory.append(point)
    path.write_text(
        json.dumps({"trajectory": trajectory}, indent=2) + "\n"
    )
    return point


# ---------------------------------------------------------------------------
# pytest coverage (kept timing-tolerant; the JSON point is the record)
# ---------------------------------------------------------------------------


def test_warm_server_beats_cold_cli(tmp_path: Path) -> None:
    point = measure_server(tmp_path, smoke=True)
    # The full-size acceptance bar is 5x; the smoke assertion stays
    # tolerant of loaded CI hosts.
    assert point["speedup"] > 1.0, point
    assert point["warm_hits"] >= SMOKE_WARM_REQUESTS - 1


def test_warm_requests_hit_prebuilt_workers(tmp_path: Path) -> None:
    samples, _, stats = _warm_server_ms(tmp_path, 5)
    assert len(samples) == 5
    assert stats["workers"]["cold_builds"] <= 1


if __name__ == "__main__":
    import tempfile

    smoke = bool(os.environ.get("BENCH_SMOKE"))
    out = Path(
        os.environ.get("BENCH_EXPANSION_JSON", "BENCH_expansion.json")
    )
    with tempfile.TemporaryDirectory() as tmp:
        point = emit_trajectory(out, Path(tmp), smoke=smoke)
    json.dump(point, sys.stdout, indent=2)
    print()
