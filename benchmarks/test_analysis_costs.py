"""Cost of the post-expansion analyses (capture lint, undeclared-name
lint, free variables) relative to expansion itself."""

import pytest

from repro import MacroProcessor
from repro.analysis import (
    detect_captures,
    free_identifiers,
    undeclared_identifiers,
)
from repro.packages import load_standard

PROGRAM = """
myenum status {ok, failed};

int process(int handle)
{
    int i;
    catch failed
        {log_failure();}
        { Painting { for_range i = 0 to 9 { draw_row(i); } } }
    unwind_protect { finish(handle); } { cleanup(handle); }
    return(ok);
}
"""


def expanded_unit():
    mp = MacroProcessor()
    load_standard(mp)
    return mp.expand_to_ast(PROGRAM)


@pytest.mark.benchmark(group="analysis-costs")
class TestAnalysisCosts:
    def test_expansion_baseline(self, benchmark):
        benchmark(expanded_unit)

    def test_capture_detection(self, benchmark):
        unit = expanded_unit()
        benchmark(lambda: detect_captures(unit))

    def test_undeclared_lint(self, benchmark):
        unit = expanded_unit()
        benchmark(lambda: undeclared_identifiers(unit))

    def test_free_identifiers(self, benchmark):
        unit = expanded_unit()
        fn = unit.items[-1]
        benchmark(lambda: free_identifiers(fn))


class TestAnalysisCorrectOnBenchInput:
    def test_no_captures_in_standard_packages(self):
        assert detect_captures(expanded_unit()) == []
