"""Section 3's suggested acceleration, implemented and measured.

"Even this process could be accelerated by a routine that compiled a
parse routine for each macro's pattern.  This specialized routine
would be associated with the macro keyword and called when needed."

We benchmark invocation parsing with the interpreted pattern engine
against the compiled per-macro routines, across patterns of
increasing complexity.
"""

import pytest

from repro import MacroProcessor, Ms2Options
from repro.lexer.scanner import tokenize
from repro.macros.compiled import compile_pattern
from repro.macros.invocation import InvocationParser
from repro.parser.core import Parser
from repro.parser.stream import TokenStream

CASES = {
    "simple": (
        "syntax stmt m {| ( $$exp::a ) |} { return(`{f($a);}); }",
        "m (x + 1)",
    ),
    "buzz-tokens": (
        "syntax stmt m {| $$id::v = $$exp::lo to $$exp::hi |}"
        "{ return(`{loop($v, $lo, $hi);}); }",
        "m i = 0 to 100",
    ),
    "separated-list": (
        "syntax stmt m {| { $$+/, id::ids } |} { return(`{f($ids);}); }",
        "m {a, b, c, d, e, f, g, h}",
    ),
    "optional+repetition": (
        "syntax stmt m {| $$id::v = $$exp::hi $$? by exp::s"
        " { $$*stmt::body } |}"
        "{ return(`{{$body}}); }",
        "m i = 10 by 2 { a(); b(); c(); }",
    ),
}


def setup_case(name: str, compiled: bool):
    definition_src, invocation_src = CASES[name]
    mp = MacroProcessor(options=Ms2Options(compiled_patterns=compiled))
    mp.load(definition_src)
    defn = mp.table.lookup("m")
    tokens = tokenize(invocation_src + " ;")

    def parse_once():
        parser = Parser(TokenStream(list(tokens)), host=mp,
                        expand_inline=False)
        keyword = parser.next_token()
        if compiled:
            return defn.compiled_matcher.parse_invocation(
                parser, defn, keyword
            )
        return InvocationParser(parser).parse_invocation(defn, keyword)

    return parse_once


class TestEquivalence:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_same_invocation_node(self, name):
        interp = setup_case(name, compiled=False)()
        comp = setup_case(name, compiled=True)()
        assert interp == comp


@pytest.mark.benchmark(group="pattern-engines")
class TestInterpretedEngine:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_interpreted(self, benchmark, name):
        benchmark(setup_case(name, compiled=False))


@pytest.mark.benchmark(group="pattern-engines")
class TestCompiledEngine:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_compiled(self, benchmark, name):
        benchmark(setup_case(name, compiled=True))


@pytest.mark.benchmark(group="pattern-compilation-cost")
class TestCompilationCost:
    """One-time cost of compiling a pattern (paid at definition)."""

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_compile(self, benchmark, name):
        mp = MacroProcessor()
        mp.load(CASES[name][0])
        pattern = mp.table.lookup("m").pattern
        benchmark(lambda: compile_pattern(pattern, "m"))
