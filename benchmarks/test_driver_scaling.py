"""Batch-driver scaling: cold vs warm cache, sequential vs ``-j N``.

The workload is a generated 50-file corpus (8 under ``BENCH_SMOKE``)
of macro-heavy translation units over the standard loop and exception
packages — the shape of build the paper's "large scale experiments"
would have run.  Three configurations per point:

- **cold** — empty cache, ``jobs=1``: every file pays the full
  pipeline (package load + expand);
- **warm** — same cache, same corpus: every file replays its
  persistent snapshot (the acceptance bar is >= 2x over cold);
- **cold -j N** — empty cache, process-pool fan-out, recorded with
  ``cpu_count`` because ``-j`` can only buy wall-clock time when the
  host has cores to run the workers on.

Run standalone to append a point to ``BENCH_expansion.json``::

    PYTHONPATH=src python benchmarks/test_driver_scaling.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.driver import BuildSession

CORPUS_FILES = 50
SMOKE_FILES = 8
PARALLEL_JOBS = (2, 4)


def driver_corpus(count: int) -> list[tuple[str, str]]:
    """``count`` distinct macro-heavy translation units."""
    sources = []
    for i in range(count):
        sources.append(
            (
                f"unit_{i:03d}.c",
                f"void fn{i}(void)\n"
                "{\n"
                "    int i;\n"
                f"    for_range i = 0 to {i + 3} {{ tick({i}); }}\n"
                f"    unroll (8) {{ a[i] = i * {i + 1}; }}\n"
                f"    catch tag{i} {{ handle(); }} {{ risky({i}); }}\n"
                "}\n",
            )
        )
    return sources


def make_session(cache_dir: Path | None, jobs: int = 1) -> BuildSession:
    return BuildSession(
        package_names=("loops", "exceptions"),
        jobs=jobs,
        cache=cache_dir,
    )


def _timed_build(
    sources, cache_dir: Path | None, jobs: int = 1
) -> tuple[float, list[str]]:
    session = make_session(cache_dir, jobs=jobs)
    start = time.perf_counter()
    report = session.build_sources(sources)
    elapsed = time.perf_counter() - start
    assert report.ok
    return elapsed, [r.output for r in report.results]


def measure_driver(tmp_root: Path, smoke: bool = False) -> dict:
    """Cold/warm/parallel wall times on the generated corpus."""
    count = SMOKE_FILES if smoke else CORPUS_FILES
    sources = driver_corpus(count)

    cache_dir = tmp_root / "seq-cache"
    cold_s, cold_outputs = _timed_build(sources, cache_dir)
    warm_s, warm_outputs = _timed_build(sources, cache_dir)
    assert warm_outputs == cold_outputs, "warm cache changed output"

    parallel = {}
    for jobs in PARALLEL_JOBS:
        job_cache = tmp_root / f"j{jobs}-cache"
        cold_j_s, outputs_j = _timed_build(sources, job_cache, jobs=jobs)
        assert outputs_j == cold_outputs, f"-j {jobs} changed output"
        parallel[f"cold_j{jobs}_ms"] = round(cold_j_s * 1000, 2)

    return {
        "files": count,
        "cpu_count": os.cpu_count(),
        "cold_ms": round(cold_s * 1000, 2),
        "warm_ms": round(warm_s * 1000, 2),
        "warm_speedup": round(cold_s / warm_s, 2),
        **parallel,
    }


def emit_trajectory(path: Path, tmp_root: Path, smoke: bool = False) -> dict:
    """Append a driver-scaling point to the shared trajectory file."""
    point = {"smoke": smoke, "driver": measure_driver(tmp_root, smoke=smoke)}
    trajectory = []
    if path.exists():
        trajectory = json.loads(path.read_text()).get("trajectory", [])
    trajectory.append(point)
    path.write_text(
        json.dumps({"trajectory": trajectory}, indent=2) + "\n"
    )
    return point


# ---------------------------------------------------------------------------
# pytest coverage (kept timing-tolerant; the JSON point is the record)
# ---------------------------------------------------------------------------


def test_warm_cache_beats_cold(tmp_path: Path) -> None:
    point = measure_driver(tmp_path, smoke=True)
    assert point["warm_speedup"] > 1.0, point
    assert point["files"] == SMOKE_FILES


@pytest.mark.benchmark(group="driver-scaling")
@pytest.mark.parametrize("mode", ["cold", "warm"])
def test_driver_build(benchmark, tmp_path: Path, mode: str) -> None:
    sources = driver_corpus(SMOKE_FILES)
    cache_dir = tmp_path / "cache"
    if mode == "warm":
        make_session(cache_dir).build_sources(sources)

    def run():
        if mode == "cold":
            make_session(cache_dir).cache.clear()
        return make_session(cache_dir).build_sources(sources)

    report = benchmark(run)
    assert report.ok


if __name__ == "__main__":
    import sys
    import tempfile

    smoke = bool(os.environ.get("BENCH_SMOKE"))
    out = Path(
        os.environ.get("BENCH_EXPANSION_JSON", "BENCH_expansion.json")
    )
    with tempfile.TemporaryDirectory() as tmp:
        point = emit_trajectory(out, Path(tmp), smoke=smoke)
    json.dump(point, sys.stdout, indent=2)
    print()
