"""Fleet throughput: N shards vs one, on the shared TCP port.

One asyncio daemon serializes Python bytecode behind a single GIL;
``repro serve --shards N`` pre-forks N interpreters sharing one port
via ``SO_REUSEPORT``, so the kernel spreads connections across
isolated GILs.  This benchmark drives K concurrent clients (raw
``tcp://`` NDJSON — *not* the gateway, whose warm-affinity routing
deliberately pins same-options traffic to one shard) against a
1-shard and an N-shard fleet and records requests/second plus client
latency percentiles.

On a multi-core host the acceptance bar is N-shard >= 2x 1-shard
req/s; on a single-core host (``os.cpu_count() == 1``) sharding
cannot beat the core count, so the bar is gated and the recorded
point notes the core count it ran on.

A chaos leg repeats the N-shard run while SIGKILLing one shard
mid-load: with retrying clients the bar is **zero** failed requests.

Run standalone to append a point to ``BENCH_expansion.json``::

    PYTHONPATH=src python benchmarks/test_server_throughput.py
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import statistics
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
WORKLOAD = REPO_ROOT / "examples" / "corpus" / "with_lock.c"

SHARDS = 2
CLIENTS = 4
REQUESTS_PER_CLIENT = 50
SMOKE_CLIENTS = 2
SMOKE_REQUESTS_PER_CLIENT = 10


class _FleetThread:
    """A shard fleet (1..N real subprocesses) run from a background
    thread, so the blocking clients can live on the main thread."""

    def __init__(self, shards: int) -> None:
        self.shards = shards
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(120), "fleet failed to start"
        if self._error is not None:
            raise self._error
        return self

    def _run(self) -> None:
        from repro.serveconfig import ServeConfig
        from repro.shard import ShardSupervisor

        async def main() -> None:
            try:
                self.supervisor = ShardSupervisor(
                    None, ServeConfig(port=0, shards=self.shards)
                )
                await self.supervisor.start()
                self.loop = asyncio.get_running_loop()
            except BaseException as exc:
                self._error = exc
                self._ready.set()
                return
            self._ready.set()
            await self.supervisor.serve_until_stopped()

        asyncio.run(main())

    def __exit__(self, *exc_info) -> None:
        self.loop.call_soon_threadsafe(self.supervisor.request_shutdown)
        self._thread.join(60)

    @property
    def address(self) -> str:
        return f"tcp://{self.supervisor.address}"


def _client_loop(
    address: str,
    source: str,
    requests: int,
    expected: str,
    latencies: list,
    failures: list,
) -> None:
    from repro.client import Ms2Client, RetryPolicy

    retry = RetryPolicy(
        max_attempts=30,
        base_delay_s=0.2,
        max_delay_s=2.0,
        deadline_s=120.0,
    )
    with Ms2Client(address, retry=retry) as client:
        for _ in range(requests):
            start = time.perf_counter()
            try:
                result = client.expand(source, str(WORKLOAD))
            except Exception as exc:  # recorded, asserted by callers
                failures.append(repr(exc))
                continue
            latencies.append((time.perf_counter() - start) * 1000)
            if result.output != expected:
                failures.append("output mismatch")


def _drive(
    fleet: _FleetThread,
    clients: int,
    requests: int,
    kill_one_shard: bool = False,
) -> dict:
    """K concurrent clients against the fleet's shared port; returns
    req/s and latency percentiles (and, optionally, SIGKILLs a shard
    mid-run to measure chaos behaviour)."""
    from repro.client import Ms2Client

    source = WORKLOAD.read_text()
    with Ms2Client(fleet.address) as warmup:
        expected = warmup.expand(source, str(WORKLOAD)).output

    latencies: list[float] = []
    failures: list[str] = []
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(
                fleet.address,
                source,
                requests,
                expected,
                latencies,
                failures,
            ),
            daemon=True,
        )
        for _ in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    if kill_one_shard:
        time.sleep(0.05)  # let the first requests land, then strike
        victim = fleet.supervisor.shards[0]
        if victim.proc is not None:
            victim.proc.send_signal(signal.SIGKILL)
    for thread in threads:
        thread.join(300)
    elapsed = time.perf_counter() - start
    if kill_one_shard:
        # The supervisor notices the death asynchronously; give its
        # reaper a moment so the restart shows in the counters.
        deadline = time.monotonic() + 30
        while (
            fleet.supervisor.restarts_total < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)

    completed = len(latencies)
    ordered = sorted(latencies) or [0.0]
    return {
        "clients": clients,
        "requests": clients * requests,
        "completed": completed,
        "failures": len(failures),
        "failure_samples": failures[:3],
        "elapsed_s": round(elapsed, 3),
        "req_per_s": round(completed / elapsed, 1) if elapsed else 0.0,
        "p50_ms": round(statistics.median(ordered), 3),
        "p99_ms": round(ordered[int(0.99 * (len(ordered) - 1))], 3),
        "restarts": fleet.supervisor.restarts_total,
    }


def measure_throughput(smoke: bool = False) -> dict:
    """1-shard vs N-shard req/s, plus the kill-mid-load chaos leg."""
    clients = SMOKE_CLIENTS if smoke else CLIENTS
    requests = SMOKE_REQUESTS_PER_CLIENT if smoke else REQUESTS_PER_CLIENT

    with _FleetThread(1) as single:
        one = _drive(single, clients, requests)
    with _FleetThread(SHARDS) as fleet:
        many = _drive(fleet, clients, requests)
    with _FleetThread(SHARDS) as chaos_fleet:
        chaos = _drive(
            chaos_fleet, clients, requests, kill_one_shard=True
        )

    scaling = (
        round(many["req_per_s"] / one["req_per_s"], 2)
        if one["req_per_s"]
        else 0.0
    )
    return {
        "workload": WORKLOAD.name,
        "shards": SHARDS,
        "cpu_count": os.cpu_count(),
        "single_shard": one,
        "multi_shard": many,
        "scaling": scaling,
        "chaos_kill_one_shard": chaos,
    }


def emit_trajectory(path: Path, smoke: bool = False) -> dict:
    """Append a fleet-throughput point to the shared trajectory file."""
    point = {"smoke": smoke, "throughput": measure_throughput(smoke=smoke)}
    trajectory = []
    if path.exists():
        trajectory = json.loads(path.read_text()).get("trajectory", [])
    trajectory.append(point)
    path.write_text(
        json.dumps({"trajectory": trajectory}, indent=2) + "\n"
    )
    return point


# ---------------------------------------------------------------------------
# pytest coverage (kept timing-tolerant; the JSON point is the record)
# ---------------------------------------------------------------------------

import pytest  # noqa: E402

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="sharded serving needs SO_REUSEPORT",
)


def test_fleet_serves_and_scales() -> None:
    point = measure_throughput(smoke=True)
    one, many = point["single_shard"], point["multi_shard"]
    assert one["failures"] == 0, one
    assert many["failures"] == 0, many
    assert one["completed"] == one["requests"]
    assert many["completed"] == many["requests"]
    # Sharding cannot beat the core count: the >= 2x acceptance bar
    # only holds where there are >= 2 cores to spread across.
    if (os.cpu_count() or 1) >= 2:
        assert point["scaling"] >= 2.0, point


def test_shard_kill_mid_load_loses_zero_requests() -> None:
    with _FleetThread(SHARDS) as fleet:
        chaos = _drive(
            fleet,
            SMOKE_CLIENTS,
            SMOKE_REQUESTS_PER_CLIENT,
            kill_one_shard=True,
        )
    assert chaos["failures"] == 0, chaos
    assert chaos["completed"] == chaos["requests"]
    assert chaos["restarts"] >= 1, "the SIGKILL never registered"


if __name__ == "__main__":
    smoke = bool(os.environ.get("BENCH_SMOKE"))
    out = Path(
        os.environ.get("BENCH_EXPANSION_JSON", "BENCH_expansion.json")
    )
    point = emit_trajectory(out, smoke=smoke)
    json.dump(point, sys.stdout, indent=2)
    print()
