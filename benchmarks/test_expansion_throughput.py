"""End-to-end expansion throughput (the paper's announced-but-never-
reported "large scale experiments").

Measures the full pipeline — tokenize, parse, type-check, expand,
unparse — on synthesized programs of growing size, with and without
macro use, plus the per-invocation cost of each standard package
macro.
"""

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro import MacroProcessor, Ms2Options
from repro.packages import load_standard


def plain_program(n_functions: int) -> str:
    parts = []
    for i in range(n_functions):
        parts.append(
            f"int fn{i}(int a, int b)\n"
            f"{{\n"
            f"    int total;\n"
            f"    total = a * {i} + b;\n"
            f"    if (total > 100) total = total - 100;\n"
            f"    while (total > 10) total = total / 2;\n"
            f"    return total;\n"
            f"}}\n"
        )
    return "\n".join(parts)


def macro_program(n_functions: int) -> str:
    parts = []
    for i in range(n_functions):
        parts.append(
            f"void fn{i}(void)\n"
            f"{{\n"
            f"    int i;\n"
            f"    Painting {{ draw{i}(); }}\n"
            f"    for_range i = 0 to {i + 3} {{ tick(); }}\n"
            f"    unless (done()) {{ catch tag{i} {{h();}} {{risky();}} }}\n"
            f"}}\n"
        )
    return "\n".join(parts)


@pytest.mark.benchmark(group="throughput-plain")
class TestPlainCThroughput:
    @pytest.mark.parametrize("n", [1, 10, 50])
    def test_plain(self, benchmark, n):
        src = plain_program(n)
        benchmark(lambda: MacroProcessor().expand_to_c(src))


@pytest.mark.benchmark(group="throughput-macros")
class TestMacroThroughput:
    @pytest.mark.parametrize("n", [1, 10, 50])
    def test_macro_heavy(self, benchmark, n):
        src = macro_program(n)

        def run():
            mp = MacroProcessor()
            load_standard(mp)
            return mp.expand_to_c(src)

        out = run()
        assert "setjmp" in out  # macros actually expanded
        benchmark(run)


@pytest.mark.benchmark(group="per-macro-cost")
class TestPerMacroCost:
    """Cost of a single expansion of each standard macro."""

    CASES = {
        "Painting": "void f(void) { Painting { draw(); } }",
        "dynamic_bind": (
            "void f(void) { dynamic_bind {int d = 1} {go();} }"
        ),
        "throw": "void f(void) { throw tag; }",
        "catch": "void f(void) { catch tag {h();} {b();} }",
        "unwind_protect": (
            "void f(void) { unwind_protect {b();} {c();} }"
        ),
        "myenum": "myenum fruit {apple, banana, kiwi};",
        "for_range": (
            "void f(void) { int i; for_range i = 0 to 9 {t();} }"
        ),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_single_macro(self, benchmark, name):
        src = self.CASES[name]

        def run():
            mp = MacroProcessor()
            load_standard(mp)
            return mp.expand_to_c(src)

        benchmark(run)


@pytest.mark.benchmark(group="definition-cost")
class TestDefinitionCost:
    """Cost of loading (parsing + type-checking) the macro packages."""

    def test_load_standard_packages(self, benchmark):
        def load():
            mp = MacroProcessor()
            load_standard(mp)
            return mp

        mp = load()
        assert len(mp.table) >= 10
        benchmark(load)


# ---------------------------------------------------------------------------
# Repeated-invocation workloads: the expansion cache's target case
# ---------------------------------------------------------------------------

def repeated_unroll(reps: int) -> str:
    """One pure macro invoked many times with identical arguments —
    the best case for the expansion cache (everything after the first
    expansion is a replay)."""
    return (
        "void f() {\n"
        + "unroll (32) { a[i] = i * 2; }\n" * reps
        + "}\n"
    )


def repeated_mixed(reps: int) -> str:
    """Two pure loop macros alternating; every invocation after the
    first pair is a cache hit."""
    return (
        "void g() {\n"
        + (
            "unroll (16) { b[i] = i; }\n"
            "for_range j = 0 to 10 { use(j); }\n"
        ) * reps
        + "}\n"
    )


def repeated_exceptions(reps: int) -> str:
    """Pure setjmp/longjmp macros from the exceptions package; the
    bodies are large, so replay saves the most meta-interpretation."""
    return (
        "void h() {\n"
        + (
            "catch err { handle(); } { risky(); }\n"
            "unwind_protect { work(); } { cleanup(); }\n"
        ) * reps
        + "}\n"
    )


#: name -> (source builder, package names, full-size rep count)
REPEATED_WORKLOADS = {
    "pure-unroll": (repeated_unroll, ("loops",), 80),
    "mixed": (repeated_mixed, ("loops",), 40),
    "exceptions": (repeated_exceptions, ("exceptions",), 75),
}


def _load_named(mp: MacroProcessor, names) -> None:
    from repro import packages

    for name in names:
        mp.load(getattr(packages, name).SOURCE)


def _expand(src: str, pkg_names, recover: bool = False, **kwargs):
    mp = MacroProcessor(options=Ms2Options(recover=recover, **kwargs))
    _load_named(mp, pkg_names)
    if recover:
        out, _ = mp.expand_to_c(src)
    else:
        out = mp.expand_to_c(src)
    return out, mp.stats


def _median_time(src, pkg_names, repeats, **kwargs) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        _expand(src, pkg_names, **kwargs)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def measure_speedups(smoke: bool = False) -> dict:
    """Fast defaults vs interpreted/uncached baseline on each
    repeated-invocation workload.  Returns the trajectory point."""
    repeats = 3 if smoke else 11
    scale = 5 if smoke else 1
    workloads = {}
    for name, (builder, pkg_names, reps) in REPEATED_WORKLOADS.items():
        src = builder(max(2, reps // scale))
        fast_out, fast_stats = _expand(src, pkg_names)
        slow_out, _ = _expand(
            src, pkg_names, cache=False, compiled_patterns=False
        )
        assert fast_out == slow_out, f"parity failure on {name!r}"
        fast = _median_time(src, pkg_names, repeats)
        slow = _median_time(
            src, pkg_names, repeats, cache=False, compiled_patterns=False
        )
        workloads[name] = {
            "fast_ms": round(fast * 1000, 2),
            "baseline_ms": round(slow * 1000, 2),
            "speedup": round(slow / fast, 2),
            "cache_hit_rate": fast_stats.cache_hit_rate(),
            "expansions": fast_stats.expansions,
        }
    return {
        "smoke": smoke,
        "workloads": workloads,
        "observability": measure_observability_overhead(smoke=smoke),
        "recovery": measure_recovery_overhead(smoke=smoke),
    }


def measure_observability_overhead(smoke: bool = False) -> dict:
    """Cost of the tracing/profiling instrumentation on pure-unroll.

    ``disabled_ms`` is the default configuration (tracer and profiler
    are ``None``; hot paths pay one None check each) — the number the
    <2%-overhead budget is judged against.  ``enabled_ms`` turns the
    full span tracer and phase profiler on.
    """
    repeats = 3 if smoke else 11
    scale = 5 if smoke else 1
    builder, pkg_names, reps = REPEATED_WORKLOADS["pure-unroll"]
    src = builder(max(2, reps // scale))
    disabled = _median_time(src, pkg_names, repeats)
    enabled = _median_time(
        src, pkg_names, repeats, trace=True, profile=True
    )
    return {
        "workload": "pure-unroll",
        "disabled_ms": round(disabled * 1000, 2),
        "enabled_ms": round(enabled * 1000, 2),
        "enabled_overhead": round(enabled / disabled - 1, 4),
    }


def measure_recovery_overhead(smoke: bool = False) -> dict:
    """Cost of the fault-tolerance machinery on pure-unroll.

    ``disabled_ms`` is the default fail-fast configuration (no
    diagnostic sink; the parser and expander pay one None check per
    recovery point) — the number the <=2%-slowdown budget is judged
    against, via ``regression_vs_last`` relative to the previous
    trajectory point.  ``enabled_ms`` runs the same clean input with
    ``recover=True``, which on a fault-free program differs only in
    sink setup and the wrapped try blocks.
    """
    repeats = 3 if smoke else 11
    scale = 5 if smoke else 1
    builder, pkg_names, reps = REPEATED_WORKLOADS["pure-unroll"]
    src = builder(max(2, reps // scale))
    disabled = _median_time(src, pkg_names, repeats)
    enabled = _median_time(src, pkg_names, repeats, recover=True)
    return {
        "workload": "pure-unroll",
        "disabled_ms": round(disabled * 1000, 2),
        "enabled_ms": round(enabled * 1000, 2),
        "enabled_overhead": round(enabled / disabled - 1, 4),
    }


def emit_trajectory(path: Path, smoke: bool = False) -> dict:
    """Append one measurement point to the BENCH_expansion.json
    trajectory file (created if missing)."""
    point = measure_speedups(smoke=smoke)
    trajectory = []
    if path.exists():
        trajectory = json.loads(path.read_text()).get("trajectory", [])
    # Disabled-observability regression vs the previous comparable
    # point (negative = this point is faster).
    for prev in reversed(trajectory):
        if prev.get("smoke") != smoke:
            continue
        prev_fast = prev["workloads"].get("pure-unroll", {}).get("fast_ms")
        if prev_fast:
            regression = round(
                point["workloads"]["pure-unroll"]["fast_ms"] / prev_fast
                - 1,
                4,
            )
            point["observability"]["regression_vs_last"] = regression
            point["recovery"]["regression_vs_last"] = regression
        break
    trajectory.append(point)
    path.write_text(
        json.dumps({"trajectory": trajectory}, indent=2) + "\n"
    )
    return point


@pytest.mark.benchmark(group="repeated-invocation")
class TestRepeatedInvocation:
    """pytest-benchmark numbers for the cache's target workloads."""

    @pytest.mark.parametrize("name", sorted(REPEATED_WORKLOADS))
    @pytest.mark.parametrize("mode", ["fast", "baseline"])
    def test_workload(self, benchmark, name, mode):
        builder, pkg_names, reps = REPEATED_WORKLOADS[name]
        src = builder(reps)
        kwargs = (
            {} if mode == "fast"
            else {"cache": False, "compiled_patterns": False}
        )
        benchmark(lambda: _expand(src, pkg_names, **kwargs))


class TestFastPathBehaviour:
    """Correctness-side assertions for the repeated workloads (these
    run even without pytest-benchmark's measurement machinery)."""

    @pytest.mark.parametrize("name", sorted(REPEATED_WORKLOADS))
    def test_parity_and_cache_hits(self, name):
        builder, pkg_names, _ = REPEATED_WORKLOADS[name]
        src = builder(6)
        fast_out, stats = _expand(src, pkg_names)
        slow_out, _ = _expand(
            src, pkg_names, cache=False, compiled_patterns=False
        )
        assert fast_out == slow_out
        assert stats.cache_hits > 0
        assert stats.compiled_parses > 0

    def test_emit_trajectory_smoke(self, tmp_path):
        point = emit_trajectory(tmp_path / "BENCH_expansion.json", smoke=True)
        assert set(point["workloads"]) == set(REPEATED_WORKLOADS)
        for numbers in point["workloads"].values():
            assert numbers["speedup"] > 0


if __name__ == "__main__":
    out = Path(
        os.environ.get("BENCH_EXPANSION_JSON", "BENCH_expansion.json")
    )
    smoke_mode = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
    result = emit_trajectory(out, smoke=smoke_mode)
    print(json.dumps(result, indent=2))
