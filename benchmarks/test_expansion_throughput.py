"""End-to-end expansion throughput (the paper's announced-but-never-
reported "large scale experiments").

Measures the full pipeline — tokenize, parse, type-check, expand,
unparse — on synthesized programs of growing size, with and without
macro use, plus the per-invocation cost of each standard package
macro.
"""

import pytest

from repro import MacroProcessor
from repro.packages import load_standard


def plain_program(n_functions: int) -> str:
    parts = []
    for i in range(n_functions):
        parts.append(
            f"int fn{i}(int a, int b)\n"
            f"{{\n"
            f"    int total;\n"
            f"    total = a * {i} + b;\n"
            f"    if (total > 100) total = total - 100;\n"
            f"    while (total > 10) total = total / 2;\n"
            f"    return total;\n"
            f"}}\n"
        )
    return "\n".join(parts)


def macro_program(n_functions: int) -> str:
    parts = []
    for i in range(n_functions):
        parts.append(
            f"void fn{i}(void)\n"
            f"{{\n"
            f"    int i;\n"
            f"    Painting {{ draw{i}(); }}\n"
            f"    for_range i = 0 to {i + 3} {{ tick(); }}\n"
            f"    unless (done()) {{ catch tag{i} {{h();}} {{risky();}} }}\n"
            f"}}\n"
        )
    return "\n".join(parts)


@pytest.mark.benchmark(group="throughput-plain")
class TestPlainCThroughput:
    @pytest.mark.parametrize("n", [1, 10, 50])
    def test_plain(self, benchmark, n):
        src = plain_program(n)
        benchmark(lambda: MacroProcessor().expand_to_c(src))


@pytest.mark.benchmark(group="throughput-macros")
class TestMacroThroughput:
    @pytest.mark.parametrize("n", [1, 10, 50])
    def test_macro_heavy(self, benchmark, n):
        src = macro_program(n)

        def run():
            mp = MacroProcessor()
            load_standard(mp)
            return mp.expand_to_c(src)

        out = run()
        assert "setjmp" in out  # macros actually expanded
        benchmark(run)


@pytest.mark.benchmark(group="per-macro-cost")
class TestPerMacroCost:
    """Cost of a single expansion of each standard macro."""

    CASES = {
        "Painting": "void f(void) { Painting { draw(); } }",
        "dynamic_bind": (
            "void f(void) { dynamic_bind {int d = 1} {go();} }"
        ),
        "throw": "void f(void) { throw tag; }",
        "catch": "void f(void) { catch tag {h();} {b();} }",
        "unwind_protect": (
            "void f(void) { unwind_protect {b();} {c();} }"
        ),
        "myenum": "myenum fruit {apple, banana, kiwi};",
        "for_range": (
            "void f(void) { int i; for_range i = 0 to 9 {t();} }"
        ),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_single_macro(self, benchmark, name):
        src = self.CASES[name]

        def run():
            mp = MacroProcessor()
            load_standard(mp)
            return mp.expand_to_c(src)

        benchmark(run)


@pytest.mark.benchmark(group="definition-cost")
class TestDefinitionCost:
    """Cost of loading (parsing + type-checking) the macro packages."""

    def test_load_standard_packages(self, benchmark):
        def load():
            mp = MacroProcessor()
            load_standard(mp)
            return mp

        mp = load()
        assert len(mp.table) >= 10
        benchmark(load)
