"""Section 1's motivation, quantified: code templates vs the verbose
``create_*`` constructor style.

The paper shows the same ``paint_function`` written both ways and
argues templates are dramatically more concise.  This bench measures
both dimensions:

* **code size** — tokens the macro writer must type, and
* **runtime** — cost of building the AST each way at expansion time.
"""

import pytest

from benchmarks.conftest import print_table
from repro import MacroProcessor
from repro.cast import stmts
from repro.cast.builders import (
    create_address_of,
    create_compound_statement,
    create_declaration_list,
    create_function_call,
    create_statement_list,
    createId,
)
from repro.lexer.scanner import tokenize

# The template version of paint_function's body (what the writer types).
TEMPLATE_TEXT = """
`{BeginPaint(hDC, &ps);
  $s;
  EndPaint(hDC, &ps);}
"""

# The constructor version (what the writer types without templates).
CONSTRUCTOR_TEXT = """
create_compound_statement(
    createDeclarationList(),
    createStatementList(
        createFunctionCall(
            createId("BeginPaint"),
            createArgumentList(
                createId("hDC"),
                createAddressOf(createId("ps")))),
        s,
        createFunctionCall(
            createId("EndPaint"),
            createArgumentList(
                createId("hDC"),
                createAddressOf(createId("ps"))))))
"""


def build_with_constructors(s: stmts.ExprStmt) -> stmts.CompoundStmt:
    return create_compound_statement(
        create_declaration_list(),
        create_statement_list(
            create_function_call(
                createId("BeginPaint"),
                [createId("hDC"), create_address_of(createId("ps"))],
            ),
            s,
            create_function_call(
                createId("EndPaint"),
                [createId("hDC"), create_address_of(createId("ps"))],
            ),
        ),
    )


def make_template_processor() -> MacroProcessor:
    mp = MacroProcessor()
    mp.load(
        "syntax stmt Painting {| $$stmt::body |}"
        "{ return(`{BeginPaint(hDC, &ps); $body; EndPaint(hDC, &ps);}); }"
    )
    return mp


class TestConciseness:
    def test_code_size_table(self):
        template_tokens = len(tokenize(TEMPLATE_TEXT)) - 1
        constructor_tokens = len(
            tokenize(CONSTRUCTOR_TEXT, meta=False)
        ) - 1
        ratio = constructor_tokens / template_tokens
        print_table(
            "paint_function: template vs constructors (writer effort)",
            ["style", "tokens", "lines"],
            [
                ("backquote template", template_tokens,
                 TEMPLATE_TEXT.strip().count("\n") + 1),
                ("create_* constructors", constructor_tokens,
                 CONSTRUCTOR_TEXT.strip().count("\n") + 1),
                ("ratio", f"{ratio:.1f}x", ""),
            ],
        )
        # The paper's claim: templates are several times more concise.
        assert ratio > 2.0

    def test_both_styles_build_the_same_tree(self):
        mp = make_template_processor()
        unit = mp.expand_to_ast("void f(void) { Painting user(); }")
        via_template = unit.items[0].body.stmts[0]

        user_stmt = stmts.ExprStmt(
            create_function_call(createId("user"), [])
        )
        via_constructors = build_with_constructors(user_stmt)
        assert via_template == via_constructors


@pytest.mark.benchmark(group="template-vs-constructors")
class TestConstructionCost:
    def test_constructor_api(self, benchmark):
        user_stmt = stmts.ExprStmt(
            create_function_call(createId("user"), [])
        )
        benchmark(lambda: build_with_constructors(user_stmt))

    def test_template_instantiation(self, benchmark):
        """Template instantiation alone (macro already parsed)."""
        mp = make_template_processor()
        defn = mp.table.lookup("Painting")
        user_stmt = stmts.ExprStmt(
            create_function_call(createId("user"), [])
        )

        def instantiate():
            return mp.expander.interpreter.call_macro(
                defn, {"body": user_stmt}
            )

        benchmark(instantiate)

    def test_full_pipeline_with_template(self, benchmark):
        mp = make_template_processor()
        src = "void f(void) { Painting user(); }"
        benchmark(lambda: mp.expand_to_ast(src))
