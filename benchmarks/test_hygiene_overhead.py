"""Cost of the hygienic-renaming extension (paper section 5).

The paper's examples use explicit ``gensym``; section 5 sketches
automatic hygiene.  This bench measures what the automatic variant
costs over gensym-by-hand, per expansion.
"""

import pytest

from repro import MacroProcessor, Ms2Options

#: A macro whose template declares two locals (rename candidates).
TEMPLATE_LOCALS = """
syntax stmt guard {| $$stmt::body |}
{
  return(`{{int saved = level;
            int depth = 0;
            level = level + 1;
            $body;
            level = saved;
            use(depth);}});
}
"""

#: The manual-gensym equivalent (what the paper's examples do).
MANUAL_GENSYM = """
syntax stmt guard {| $$stmt::body |}
{
  @id saved = gensym();
  @id depth = gensym();
  return(`{{int $saved = level;
            int $depth = 0;
            level = level + 1;
            $body;
            level = $saved;
            use($depth);}});
}
"""

PROGRAM = "void f(void) { guard { work(); } }"


def run(definition: str, hygienic: bool) -> str:
    mp = MacroProcessor(options=Ms2Options(hygienic=hygienic))
    mp.load(definition)
    return mp.expand_to_c(PROGRAM)


class TestBehaviour:
    def test_hygienic_renames_template_locals(self):
        out = run(TEMPLATE_LOCALS, hygienic=True)
        assert "int saved" not in out

    def test_unhygienic_keeps_names(self):
        out = run(TEMPLATE_LOCALS, hygienic=False)
        assert "int saved" in out

    def test_manual_gensym_equivalent_protection(self):
        out = run(MANUAL_GENSYM, hygienic=False)
        assert "int saved" not in out


@pytest.mark.benchmark(group="hygiene")
class TestHygieneOverhead:
    def test_unhygienic_expansion(self, benchmark):
        mp = MacroProcessor(options=Ms2Options(hygienic=False))
        mp.load(TEMPLATE_LOCALS)
        benchmark(lambda: mp.expand_to_ast(PROGRAM))

    def test_hygienic_expansion(self, benchmark):
        mp = MacroProcessor(options=Ms2Options(hygienic=True))
        mp.load(TEMPLATE_LOCALS)
        benchmark(lambda: mp.expand_to_ast(PROGRAM))

    def test_manual_gensym_expansion(self, benchmark):
        mp = MacroProcessor(options=Ms2Options(hygienic=False))
        mp.load(MANUAL_GENSYM)
        benchmark(lambda: mp.expand_to_ast(PROGRAM))
