"""Figure 3: parses of ``{int x; $ph1 $ph2 return(x);}``.

Regenerates the paper's table — the declaration/statement boundary
inside a compound statement template is decided by the placeholder
types, including the syntactically illegal stmt-then-decl case — and
benchmarks the disambiguation.
"""

import pytest

from benchmarks.conftest import print_table
from repro.asttypes.types import prim
from repro.errors import ParseError
from repro.figures import FIGURE3_TYPES, figure3_rows, parse_template_fragment

PAPER_ROWS = {
    ("decl", "decl"): (
        '(c-s (decl-list ((decl "int x") ph1 ph2)) '
        "(stmt-list ((r-s (exp (id x))))))"
    ),
    ("decl", "stmt"): (
        '(c-s (decl-list ((decl "int x") ph1)) '
        "(stmt-list (ph2 (r-s (exp (id x))))))"
    ),
    ("stmt", "stmt"): (
        '(c-s (decl-list ((decl "int x"))) '
        "(stmt-list (ph1 ph2 (r-s (exp (id x))))))"
    ),
    ("stmt", "decl"): "Syntactically Illegal Program",
}


class TestFigure3Table:
    def test_regenerate_table(self):
        rows = figure3_rows()
        print_table(
            "Figure 3 — parses of {int x; $ph1 $ph2 return(x);}",
            ["ph1", "ph2", "Parse"],
            rows,
        )
        assert {(a, b): sx for a, b, sx in rows} == PAPER_ROWS

    def test_illegal_case_detected_at_parse_time(self):
        with pytest.raises(ParseError):
            parse_template_fragment(
                "stmt",
                "{int x; $ph1 $ph2 return(x);}",
                {"ph1": prim("stmt"), "ph2": prim("decl")},
            )


@pytest.mark.benchmark(group="fig3-compound-parse")
class TestCompoundDisambiguationCost:
    @pytest.mark.parametrize(
        "t1,t2",
        [(a, b) for a, b in FIGURE3_TYPES if (a, b) != ("stmt", "decl")],
        ids=["decl-decl", "decl-stmt", "stmt-stmt"],
    )
    def test_parse_compound_template(self, benchmark, t1, t2):
        bindings = {"ph1": prim(t1), "ph2": prim(t2)}
        benchmark(
            lambda: parse_template_fragment(
                "stmt", "{int x; $ph1 $ph2 return(x);}", bindings
            )
        )
