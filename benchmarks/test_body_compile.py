"""Cold-path cost of macro body evaluation: interpreter vs compiler.

The body/template compiler (:mod:`repro.macros.codegen`) targets the
*baseline* dimension every cache-oriented BENCH number divides by: a
cache-off expansion used to tree-walk the meta-interpreter for every
invocation.  This benchmark records that dimension — each workload
expanded cold (``cache=False``) with ``compiled_bodies`` off and on —
plus compile-time amortization (the 1st invocation pays the one-time
lowering to Python, the Nth only the generated code).

Workloads come in two flavours:

* the three repeated-invocation workloads shared with
  ``test_expansion_throughput`` (template/splice-heavy — the compiler
  helps, but clone-on-splice and the recursive expansion pass bound
  the win), and
* two compute-heavy macros (``ct-table``/``ct-fold``) in the paper's
  compile-time-computation tradition (section 4's table generation),
  where the meta-program itself is the cost and compilation pays off
  an order of magnitude.

Results append to ``BENCH_expansion.json`` under a ``baseline`` key
(the cache trajectory under ``trajectory`` is left untouched):

    BENCH_SMOKE=1 python benchmarks/test_body_compile.py
"""

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro import MacroProcessor, Ms2Options

try:
    from .test_expansion_throughput import REPEATED_WORKLOADS, _expand
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from test_expansion_throughput import REPEATED_WORKLOADS, _expand

# ---------------------------------------------------------------------------
# Compute-heavy workloads: meta-evaluation IS the cold-path cost
# ---------------------------------------------------------------------------

CT_TABLE_SOURCE = (
    "syntax exp sqtable {| ( $$exp::n ) |} {\n"
    "  int i; int acc; @exp parts[];\n"
    "  acc = 0; parts = list();\n"
    "  for (i = 0; i < 768; i++) {\n"
    "    acc = (acc * 31 + i * i + (acc >> 3)) % 65521;\n"
    "    if (i % 64 == 63) parts = cons(`($(acc)), parts);\n"
    "  }\n"
    "  return(`(pick($n, $parts)));\n"
    "}"
)

CT_FOLD_SOURCE = (
    "syntax exp ctpow {| ( $$exp::b , $$exp::e ) |} {\n"
    "  int r; int i; int n; int base;\n"
    "  r = 1; base = 17; n = 4000;\n"
    "  for (i = 0; i < n; i++) { r = (r * base) % 1000003; }\n"
    "  return(`($(r)));\n"
    "}"
)

#: name -> (macro source, program)
COMPUTE_WORKLOADS = {
    "ct-table": (CT_TABLE_SOURCE, "int r = sqtable(3);"),
    "ct-fold": (CT_FOLD_SOURCE, "int r = ctpow(2, 10);"),
}


def _expand_custom(source: str, program: str, **kwargs):
    mp = MacroProcessor(options=Ms2Options(cache=False, **kwargs))
    mp.load(source)
    out = mp.expand_to_c(program)
    return out, mp.stats


def _median(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _workload_runner(name: str, smoke: bool):
    """A zero-arg expander for ``name`` under given body options,
    plus a parity-checked reference run collecting stats."""
    if name in COMPUTE_WORKLOADS:
        source, program = COMPUTE_WORKLOADS[name]

        def run(**kwargs):
            return _expand_custom(source, program, **kwargs)

        return run
    builder, pkg_names, reps = REPEATED_WORKLOADS[name]
    scale = 5 if smoke else 1
    src = builder(max(2, reps // scale))

    def run(**kwargs):
        return _expand(src, pkg_names, cache=False, **kwargs)

    return run


def measure_baseline(smoke: bool = False) -> dict:
    """Cold (cache-off) expansion per workload, bodies interpreted vs
    compiled; byte-parity is asserted before timing."""
    repeats = 3 if smoke else 9
    workloads = {}
    names = list(REPEATED_WORKLOADS) + list(COMPUTE_WORKLOADS)
    for name in names:
        run = _workload_runner(name, smoke)
        slow_out, _ = run(compiled_bodies=False)
        fast_out, stats = run(compiled_bodies=True)
        assert fast_out == slow_out, f"parity failure on {name!r}"
        slow = _median(lambda: run(compiled_bodies=False), repeats)
        fast = _median(lambda: run(compiled_bodies=True), repeats)
        workloads[name] = {
            "interpreted_ms": round(slow * 1000, 2),
            "compiled_ms": round(fast * 1000, 2),
            "speedup": round(slow / fast, 2),
            "bodies_compiled": stats.bodies_compiled,
            "templates_compiled": stats.templates_compiled,
            "compile_fallbacks": stats.compile_fallbacks,
        }
    return {
        "smoke": smoke,
        "workloads": workloads,
        "amortization": measure_amortization(smoke=smoke),
    }


def measure_amortization(smoke: bool = False) -> dict:
    """1st vs Nth invocation on one processor: the first expansion
    pays the one-time body lowering (tracked in ``compile_time_ms``),
    later ones only run the generated code."""
    repeats = 3 if smoke else 9
    source, program = COMPUTE_WORKLOADS["ct-fold"]
    mp = MacroProcessor(options=Ms2Options(cache=False))
    mp.load(source)
    start = time.perf_counter()
    mp.expand_to_c(program)
    first = time.perf_counter() - start
    steady = _median(lambda: mp.expand_to_c(program), repeats)
    return {
        "workload": "ct-fold",
        "first_ms": round(first * 1000, 2),
        "steady_ms": round(steady * 1000, 2),
        "first_over_steady": round(first / steady, 2),
        "compile_time_ms": round(mp.stats.compile_time_ms, 2),
    }


def emit_baseline(path: Path, smoke: bool = False) -> dict:
    """Append one ``baseline`` point to BENCH_expansion.json (the
    cache ``trajectory`` list is preserved untouched)."""
    point = measure_baseline(smoke=smoke)
    data = {}
    if path.exists():
        data = json.loads(path.read_text())
    data.setdefault("baseline", []).append(point)
    path.write_text(json.dumps(data, indent=2) + "\n")
    return point


# ---------------------------------------------------------------------------
# pytest-benchmark + correctness-side assertions
# ---------------------------------------------------------------------------

ALL_WORKLOADS = sorted(list(REPEATED_WORKLOADS) + list(COMPUTE_WORKLOADS))


@pytest.mark.benchmark(group="body-compile")
class TestBodyCompileBench:
    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    @pytest.mark.parametrize("mode", ["interpreted", "compiled"])
    def test_cold_expansion(self, benchmark, name, mode):
        run = _workload_runner(name, smoke=True)
        benchmark(lambda: run(compiled_bodies=(mode == "compiled")))


class TestBodyCompileBehaviour:
    """Structural assertions that run without the benchmark plugin."""

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_cold_parity_and_compilation(self, name):
        run = _workload_runner(name, smoke=True)
        slow_out, _ = run(compiled_bodies=False)
        fast_out, stats = run(compiled_bodies=True)
        assert fast_out == slow_out
        assert stats.bodies_compiled > 0
        assert stats.compile_fallbacks == 0

    def test_compute_workloads_beat_interpreter(self):
        # The compute-heavy macros are eval-bound; even on a noisy
        # machine the compiled run must at least beat the tree-walker.
        source, program = COMPUTE_WORKLOADS["ct-fold"]
        slow = _median(
            lambda: _expand_custom(
                source, program, compiled_bodies=False
            ),
            3,
        )
        fast = _median(
            lambda: _expand_custom(source, program), 3
        )
        assert fast < slow

    def test_emit_baseline_smoke(self, tmp_path):
        path = tmp_path / "BENCH_expansion.json"
        path.write_text(json.dumps({"trajectory": [{"smoke": True}]}))
        point = emit_baseline(path, smoke=True)
        assert set(point["workloads"]) == set(ALL_WORKLOADS)
        for numbers in point["workloads"].values():
            assert numbers["speedup"] > 0
            assert numbers["compile_fallbacks"] == 0
        data = json.loads(path.read_text())
        assert data["trajectory"] == [{"smoke": True}]
        assert len(data["baseline"]) == 1
        assert point["amortization"]["first_over_steady"] >= 1


if __name__ == "__main__":
    out = Path(
        os.environ.get("BENCH_EXPANSION_JSON", "BENCH_expansion.json")
    )
    smoke_mode = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
    result = emit_baseline(out, smoke=smoke_mode)
    print(json.dumps(result, indent=2))
