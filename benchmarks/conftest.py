"""Shared helpers for the benchmark harness.

Every benchmark prints the table/figure it regenerates (run pytest
with ``-s`` to see them inline; they are also asserted structurally).
"""

from __future__ import annotations

import pytest


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Render an aligned text table, paper-style."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print()
    print(f"== {title}")
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()
