"""Figure 2: the four parses of the template ``[int $y;]``.

Regenerates the paper's table (the parse of a declaration template as
a function of the AST type of the placeholder ``y``) and benchmarks
the type-directed template parse.
"""

import pytest

from benchmarks.conftest import print_table
from repro.asttypes.types import list_of, prim
from repro.figures import FIGURE2_TYPES, figure2_rows, parse_template_fragment

PAPER_ROWS = {
    "init-declarator[]": "(declaration (int) y)",
    "init-declarator": "(declaration (int) (y))",
    "declarator": "(declaration (int) ((init-declarator y ())))",
    "identifier": (
        "(declaration (int) ((init-declarator (direct-declarator y) ())))"
    ),
}


class TestFigure2Table:
    def test_regenerate_table(self):
        rows = figure2_rows()
        print_table(
            "Figure 2 — parses of the template [int $y;] by AST type of y",
            ["AST type of y", "Parse"],
            rows,
        )
        assert dict(rows) == PAPER_ROWS

    def test_four_distinct_parses(self):
        assert len({sx for _, sx in figure2_rows()}) == 4


@pytest.mark.benchmark(group="fig2-template-parse")
class TestTemplateParseCost:
    """Cost of the type-directed parse, per placeholder type."""

    @pytest.mark.parametrize("label,asttype", FIGURE2_TYPES,
                             ids=[l for l, _ in FIGURE2_TYPES])
    def test_parse_template(self, benchmark, label, asttype):
        benchmark(
            lambda: parse_template_fragment(
                "decl", "int $y;", {"y": asttype}
            )
        )
